//! Deterministic chaos: a storage node is killed mid-pipelined-append
//! (sequencer token batching on) while a replacement runs concurrently.
//! Every acked append must stay readable, no sealed-epoch write may leak
//! into the rebuilt chain, and — because every fault decision is a pure
//! function of the seed — the schedule replays identically.

mod support;

use std::sync::mpsc;
use std::time::Duration;

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu::proto::{StorageRequest, StorageResponse};
use corfu::reconfig::replace_storage_node;
use corfu::{ClientOptions, LogOffset, NodeId};
use support::fault::{FaultPlan, TraceEvent};
use support::{seed_from_env, SeedGuard};

const TOTAL_APPENDS: u32 = 120;
const CRASH_AT_WRITE: u64 = 25;

/// One full run of the scenario. Returns the fault plan's decision trace
/// (for the determinism assertion) after verifying all safety properties.
fn scenario(seed: u64) -> Vec<TraceEvent> {
    let cluster =
        LocalCluster::new(ClusterConfig { num_sets: 2, replication: 2, ..Default::default() });
    let plan = FaultPlan::new(seed);
    // Seeded jitter on the storage path perturbs interleavings, then the
    // 25th storage write kills its target node outright.
    plan.delay_calls("storage.", 20, 300);
    plan.crash_at("storage.write", CRASH_AT_WRITE);
    let (tx, rx) = mpsc::channel::<NodeId>();
    {
        let registry = cluster.registry().clone();
        plan.on_crash(move |node| {
            // Kill the node for real so clients outside the plan observe
            // the crash too, then hand the victim to the coordinator.
            registry.kill(&format!("storage-{node}"));
            let _ = tx.send(node);
        });
    }

    // The workload: pipelined appends with batched tokens, retrying
    // through the crash and the concurrent reseal until all are acked.
    let appender_client = cluster
        .client_with_factory(
            plan.wrap(cluster.conn_factory()),
            ClientOptions::batched(),
            cluster.metrics().clone(),
        )
        .unwrap();
    let appender = std::thread::spawn(move || {
        let mut acked: Vec<(LogOffset, Bytes)> = Vec::new();
        for i in 0..TOTAL_APPENDS {
            let payload = Bytes::from(format!("chaos-{i}").into_bytes());
            loop {
                match appender_client.append(payload.clone()) {
                    Ok(off) => {
                        acked.push((off, payload));
                        break;
                    }
                    Err(_) => {
                        // The dead node (or the reseal) failed this append;
                        // refresh and try again until the rebuild lands.
                        std::thread::sleep(Duration::from_millis(2));
                        let _ = appender_client.refresh_layout();
                    }
                }
            }
        }
        acked
    });

    // Replace the victim while the appender is still hammering the log.
    let dead = rx.recv_timeout(Duration::from_secs(10)).expect("the planned crash must fire");
    let coordinator = cluster.client().unwrap();
    let (info, replacement) = cluster.spawn_replacement_storage();
    let outcome = replace_storage_node(&coordinator, dead, info.clone()).unwrap();
    assert!(outcome.pages_copied > 0, "the rebuild must move pages");
    assert_eq!(outcome.projection.epoch, 1);

    let acked = appender.join().unwrap();
    assert_eq!(acked.len() as u32, TOTAL_APPENDS, "every append must eventually be acked");

    // Safety 1: every acked append is readable with its exact payload.
    let reader = cluster.client().unwrap();
    for (off, payload) in &acked {
        assert_eq!(
            &reader.read_entry(*off).unwrap().payload,
            payload,
            "acked append at offset {off} lost in the rebuild"
        );
    }

    // Safety 2: no sealed-epoch write leaked — the replacement is in
    // lockstep with the surviving replica of the rebuilt chain, page for
    // page. (Offsets never acked may be holes; they are absent from both.)
    let chain = outcome
        .projection
        .log(0)
        .replica_sets
        .iter()
        .find(|set| set.contains(&info.id))
        .expect("replacement must be in a chain");
    let survivor_id = *chain.iter().find(|&&n| n != info.id).expect("chain has a survivor");
    let survivor = &cluster.storage()[survivor_id as usize];
    let tail = match survivor.process(StorageRequest::LocalTail { epoch: 1 }) {
        StorageResponse::Tail(t) => t,
        other => panic!("local tail: {other:?}"),
    };
    assert_eq!(
        replacement.process(StorageRequest::LocalTail { epoch: 1 }),
        StorageResponse::Tail(tail)
    );
    for addr in 0..tail {
        assert_eq!(
            replacement.process(StorageRequest::Read { epoch: 1, addr }),
            survivor.process(StorageRequest::Read { epoch: 1, addr }),
            "replacement diverges from survivor at local address {addr}"
        );
    }

    plan.trace()
}

#[test]
fn killed_node_under_pipelined_load_is_replaced_deterministically() {
    let seed = seed_from_env(0xC0FF_EE00_0003);
    let _guard = SeedGuard(seed);

    let first = scenario(seed);
    let second = scenario(seed);

    // The pre-crash schedule is a pure function of the seed: both runs
    // must agree decision-for-decision up to and including the crash.
    // (After the crash, retry timing is wall-clock dependent, so only the
    // prefix is compared.)
    let crash_of = |trace: &[TraceEvent]| {
        trace.iter().position(|e| e.action == "crash").expect("crash must be in the trace")
    };
    let (c1, c2) = (crash_of(&first), crash_of(&second));
    assert_eq!(
        &first[..=c1],
        &second[..=c2],
        "same seed must reproduce the same schedule through the crash"
    );
    let crash = &first[c1];
    assert_eq!(crash.point, "storage.write");
    assert_eq!(crash.nth, CRASH_AT_WRITE);
}
