//! Shared test support: the deterministic fault-injection harness.
//!
//! Integration test binaries pull this in with `mod support;`. Not every
//! binary uses every helper, hence the crate-wide allowance below.
#![allow(dead_code)]

pub mod fault;

/// The environment variable overriding a test's fault-injection seed, so a
/// failing schedule reported by CI can be replayed locally:
///
/// ```sh
/// TANGO_FAULT_SEED=0xdeadbeef cargo test -p corfu --test chaos_replacement_tests
/// ```
pub const SEED_ENV: &str = "TANGO_FAULT_SEED";

/// The seed for this run: `TANGO_FAULT_SEED` if set (decimal or `0x` hex),
/// else `default`.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(v) => {
            let v = v.trim();
            let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16)
            } else {
                v.parse()
            };
            parsed.unwrap_or_else(|_| panic!("unparseable {SEED_ENV}={v:?}"))
        }
        Err(_) => default,
    }
}

/// Prints the active seed if the test panics, so any assertion failure in a
/// seeded test is reproducible by exporting the printed value.
pub struct SeedGuard(pub u64);

impl Drop for SeedGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("=== reproduce with {SEED_ENV}={:#x} ===", self.0);
        }
    }
}

/// SplitMix64: the mixing function behind the fault plan's deterministic
/// decisions (same finalizer as `tango_workload::rng`).
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
