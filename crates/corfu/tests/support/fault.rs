//! A deterministic fault-injection harness for cluster tests.
//!
//! [`FaultPlan`] wraps a cluster's [`ConnFactory`] so every client→server
//! call passes through it. Calls are classified into named protocol points
//! (`storage.write`, `seq.next_batch`, ...) and rules attached to a point
//! prefix can crash the target node, drop the call, or delay it.
//!
//! Every decision is a pure function of `(seed, point, nth occurrence of
//! that point)` — never of wall-clock time or thread interleaving — so a
//! schedule is replayed exactly by re-running with the same seed, and a
//! failure printed by [`super::SeedGuard`] reproduces with
//! `TANGO_FAULT_SEED=<seed>`.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use corfu::cluster::{LAYOUT_BASE_ID, SEQUENCER_BASE_ID, STORAGE_REPLACEMENT_BASE_ID};
use corfu::{ConnFactory, NodeId, NodeInfo};
use parking_lot::Mutex;
use tango_rpc::{ClientConn, RpcError};

use super::splitmix64;

/// What a triggered rule does to the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep for up to this many microseconds (seeded amount), then let the
    /// call through. Perturbs race interleavings without changing outcomes.
    Delay(u64),
    /// Fail the call with [`RpcError::Timeout`]; the server never sees it.
    Drop,
    /// Mark the target node dead (all future calls through this plan fail
    /// with [`RpcError::Disconnected`]), fire the `on_crash` hook, and fail
    /// the call.
    Crash,
}

/// When a rule fires.
#[derive(Debug, Clone, Copy)]
enum Trigger {
    /// Exactly at the nth occurrence (1-based) of the point.
    Nth(u64),
    /// On each occurrence with this percent probability (seeded).
    Percent(u32),
}

struct Rule {
    prefix: String,
    trigger: Trigger,
    action: FaultAction,
}

/// One classified call and what the plan did to it, in plan-decision order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The protocol point, e.g. `storage.write`.
    pub point: String,
    /// Which occurrence of that point this was (1-based).
    pub nth: u64,
    /// `pass`, `delay`, `drop`, or `crash`.
    pub action: &'static str,
}

type CrashHook = Arc<dyn Fn(NodeId) + Send + Sync>;

/// A seeded fault schedule shared by every connection it wraps.
pub struct FaultPlan {
    seed: u64,
    rules: Mutex<Vec<Rule>>,
    counters: Mutex<HashMap<String, u64>>,
    dead: Mutex<HashSet<NodeId>>,
    trace: Mutex<Vec<TraceEvent>>,
    on_crash: Mutex<Option<CrashHook>>,
}

impl FaultPlan {
    /// A plan with no rules: every call passes (but is still traced).
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(Self {
            seed,
            rules: Mutex::new(Vec::new()),
            counters: Mutex::new(HashMap::new()),
            dead: Mutex::new(HashSet::new()),
            trace: Mutex::new(Vec::new()),
            on_crash: Mutex::new(None),
        })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Crash the target node at exactly the `nth` (1-based) call whose
    /// point starts with `prefix`.
    pub fn crash_at(&self, prefix: &str, nth: u64) {
        self.rules.lock().push(Rule {
            prefix: prefix.to_owned(),
            trigger: Trigger::Nth(nth),
            action: FaultAction::Crash,
        });
    }

    /// Drop calls whose point starts with `prefix` with `percent`
    /// probability (seeded per occurrence).
    pub fn drop_calls(&self, prefix: &str, percent: u32) {
        self.rules.lock().push(Rule {
            prefix: prefix.to_owned(),
            trigger: Trigger::Percent(percent),
            action: FaultAction::Drop,
        });
    }

    /// Delay calls whose point starts with `prefix` by a seeded amount up
    /// to `max_micros`, with `percent` probability.
    pub fn delay_calls(&self, prefix: &str, percent: u32, max_micros: u64) {
        self.rules.lock().push(Rule {
            prefix: prefix.to_owned(),
            trigger: Trigger::Percent(percent),
            action: FaultAction::Delay(max_micros),
        });
    }

    /// Hook invoked (once) when a Crash rule fires, with the victim's node
    /// id — e.g. to also kill the node in the cluster harness so clients
    /// outside this plan observe the crash too.
    pub fn on_crash(&self, f: impl Fn(NodeId) + Send + Sync + 'static) {
        *self.on_crash.lock() = Some(Arc::new(f));
    }

    /// Marks `node` dead: every future call to it through this plan fails
    /// with [`RpcError::Disconnected`].
    pub fn kill(&self, node: NodeId) {
        self.dead.lock().insert(node);
    }

    /// Whether `node` has been marked dead.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead.lock().contains(&node)
    }

    /// The decisions taken so far, in decision order.
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.trace.lock().clone()
    }

    /// Wraps a cluster connection factory so every connection it hands out
    /// consults this plan.
    pub fn wrap(self: &Arc<Self>, inner: Arc<dyn ConnFactory>) -> Arc<dyn ConnFactory> {
        Arc::new(FaultFactory { inner, plan: Arc::clone(self) })
    }

    /// 1-based occurrence number of `point`, incremented atomically.
    fn occurrence(&self, point: &str) -> u64 {
        let mut counters = self.counters.lock();
        let n = counters.entry(point.to_owned()).or_insert(0);
        *n += 1;
        *n
    }

    /// The action for this occurrence — a pure function of
    /// `(seed, point, nth, rule index)`, independent of time and threads.
    /// Scheduled ([`Trigger::Nth`]) rules outrank probabilistic ones, so a
    /// seeded delay can never shadow a planned crash.
    fn decide(&self, point: &str, nth: u64) -> Option<FaultAction> {
        const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
        let rules = self.rules.lock();
        for scheduled in [true, false] {
            for (idx, rule) in rules.iter().enumerate() {
                if matches!(rule.trigger, Trigger::Nth(_)) != scheduled
                    || !point.starts_with(&rule.prefix)
                {
                    continue;
                }
                let h = splitmix64(
                    self.seed ^ fnv1a(point) ^ nth.wrapping_mul(GOLDEN) ^ ((idx as u64) << 56),
                );
                let fires = match rule.trigger {
                    Trigger::Nth(target) => nth == target,
                    Trigger::Percent(p) => (h % 100) < p as u64,
                };
                if fires {
                    let action = match rule.action {
                        FaultAction::Delay(max) if max > 0 => {
                            FaultAction::Delay(1 + (h >> 33) % max)
                        }
                        other => other,
                    };
                    return Some(action);
                }
            }
        }
        None
    }

    fn record(&self, point: &str, nth: u64, action: &'static str) {
        self.trace.lock().push(TraceEvent { point: point.to_owned(), nth, action });
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Names the protocol point of a request from the target node's id range
/// and the request's leading wire tag.
fn classify(node: NodeId, request: &[u8]) -> String {
    let tag = request.first().copied().unwrap_or(u8::MAX);
    let is_seq = (SEQUENCER_BASE_ID..STORAGE_REPLACEMENT_BASE_ID).contains(&node);
    let is_meta = node >= LAYOUT_BASE_ID;
    let (kind, op) = if is_meta {
        (
            "meta",
            match tag {
                0 => "read",
                1 => "write",
                2 => "tail",
                3 => "peers",
                4 => "set_peers",
                _ => "other",
            },
        )
    } else if is_seq {
        let op = match tag {
            0 => "next",
            1 => "query",
            2 => "seal",
            3 => "bootstrap",
            4 => "dump",
            5 => "next_batch",
            6 => "adopt_stream",
            _ => "other",
        };
        // Sequencer ids encode their log: initial ids are BASE + log,
        // replacements BASE + gen*100 + log, so `(id - BASE) % 100`
        // recovers the log either way. Log 0 keeps the bare `seq.*`
        // names so existing fault schedules hit unchanged.
        let log = (node - SEQUENCER_BASE_ID) % 100;
        return if log == 0 { format!("seq.{op}") } else { format!("shard{log}.seq.{op}") };
    } else {
        (
            "storage",
            match tag {
                0 => "write",
                1 => "read",
                2 => "trim",
                3 => "trim_prefix",
                4 => "seal",
                5 => "local_tail",
                6 => "copy_range",
                _ => "other",
            },
        )
    };
    format!("{kind}.{op}")
}

struct FaultFactory {
    inner: Arc<dyn ConnFactory>,
    plan: Arc<FaultPlan>,
}

impl ConnFactory for FaultFactory {
    fn connect(&self, node: &NodeInfo) -> Arc<dyn ClientConn> {
        Arc::new(FaultConn {
            inner: self.inner.connect(node),
            node: node.id,
            plan: Arc::clone(&self.plan),
        })
    }
}

struct FaultConn {
    inner: Arc<dyn ClientConn>,
    node: NodeId,
    plan: Arc<FaultPlan>,
}

impl ClientConn for FaultConn {
    fn call(&self, request: &[u8]) -> tango_rpc::Result<Vec<u8>> {
        if self.plan.is_dead(self.node) {
            return Err(RpcError::Disconnected);
        }
        let point = classify(self.node, request);
        let nth = self.plan.occurrence(&point);
        match self.plan.decide(&point, nth) {
            Some(FaultAction::Crash) => {
                self.plan.record(&point, nth, "crash");
                self.plan.kill(self.node);
                let hook = self.plan.on_crash.lock().clone();
                if let Some(hook) = hook {
                    hook(self.node);
                }
                Err(RpcError::Disconnected)
            }
            Some(FaultAction::Drop) => {
                self.plan.record(&point, nth, "drop");
                Err(RpcError::Timeout)
            }
            Some(FaultAction::Delay(micros)) => {
                self.plan.record(&point, nth, "delay");
                std::thread::sleep(Duration::from_micros(micros));
                self.inner.call(request)
            }
            None => {
                self.plan.record(&point, nth, "pass");
                self.inner.call(request)
            }
        }
    }
}
