//! Races between trimming and everything else: readers polling a hole
//! that gets trimmed out from under them, and a storage node crashing in
//! the middle of background compaction whose seeded workload must replay
//! to a byte-identical state.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu::proto::{StorageRequest, StorageResponse, WriteKind};
use corfu::{ClientOptions, Compactor, CompactorConfig, ReadOutcome, StorageServer};
use tango_flash::{FlashUnit, TieredStore};

#[test]
fn wait_read_returns_trimmed_mid_poll() {
    // A reader parked on an unwritten offset must surface a trim that
    // lands mid-poll immediately — not spin until the hole-fill deadline
    // and certainly not junk-fill a trimmed slot. The 30s deadline makes
    // the failure mode (waiting it out) unmistakable.
    let config = ClusterConfig {
        client_options: ClientOptions {
            hole_fill_timeout: Duration::from_secs(30),
            ..ClientOptions::default()
        },
        ..ClusterConfig::default()
    };
    let cluster = LocalCluster::new(config);
    let client = cluster.client().unwrap();
    let token = client.token(&[]).unwrap();
    let off = token.offset;

    let waiter = cluster.client().unwrap();
    let start = Instant::now();
    let handle = std::thread::spawn(move || waiter.wait_read(off).unwrap());
    // Let the waiter establish its polling loop, then trim the offset.
    std::thread::sleep(Duration::from_millis(30));
    client.trim(off).unwrap();

    assert_eq!(handle.join().unwrap(), ReadOutcome::Trimmed);
    // Poll backoff caps at 16ms, so the trim surfaces within a few polls.
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "waiter spun for {:?} instead of observing the trim",
        start.elapsed()
    );
}

/// One deterministic storage operation of the seeded churn workload.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    Write { addr: u64, payload: Vec<u8> },
    Fill { addr: u64 },
    TrimPrefix { horizon: u64 },
}

/// A tiny deterministic generator (no external RNG dependency).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The full workload for `seed`: rounds of writes (with occasional junk
/// fills) chased by a prefix trim that trails the tail. Entirely a
/// function of the seed, so two applications are comparable byte for byte.
fn seeded_workload(seed: u64) -> Vec<Op> {
    let mut rng = Lcg(seed);
    let mut ops = Vec::new();
    const ROUND: u64 = 16;
    const ROUNDS: u64 = 10;
    for round in 0..ROUNDS {
        let base = round * ROUND;
        for addr in base..base + ROUND {
            if rng.next() % 7 == 0 {
                ops.push(Op::Fill { addr });
            } else {
                let filler = rng.next() % 100;
                ops.push(Op::Write {
                    addr,
                    payload: format!("s{seed}-a{addr}-{filler}").into_bytes(),
                });
            }
        }
        // Trim trails the tail by 8-23 pages; never regresses (the unit
        // treats a lower horizon as a no-op anyway).
        let lag = 8 + rng.next() % 16;
        ops.push(Op::TrimPrefix { horizon: base.saturating_sub(lag) });
    }
    ops
}

/// Applies `op`. `replay` accepts the outcomes a second application of the
/// same history produces: write-once arbitration on surviving pages and
/// trims on pages below the persisted horizon.
fn apply(server: &StorageServer, op: &Op, replay: bool) {
    let resp = match op {
        Op::Write { addr, payload } => server.process(StorageRequest::Write {
            epoch: 0,
            addr: *addr,
            kind: WriteKind::Data,
            payload: Bytes::from(payload.clone()),
        }),
        Op::Fill { addr } => server.process(StorageRequest::Write {
            epoch: 0,
            addr: *addr,
            kind: WriteKind::Junk,
            payload: Bytes::new(),
        }),
        Op::TrimPrefix { horizon } => {
            server.process(StorageRequest::TrimPrefix { epoch: 0, horizon: *horizon })
        }
    };
    match resp {
        StorageResponse::Ok => {}
        StorageResponse::ErrAlreadyWritten | StorageResponse::ErrTrimmed if replay => {}
        other => panic!("{op:?} (replay={replay}) failed: {other:?}"),
    }
}

fn open_tiered_server(dir: &std::path::Path) -> Arc<StorageServer> {
    let store = TieredStore::open(dir, 256, 8, 4).unwrap();
    let unit = FlashUnit::open(Box::new(store), 256).unwrap();
    Arc::new(StorageServer::new(unit))
}

/// Runs the seeded workload twice: once on a control node that never
/// fails, and once on a node whose process dies mid-workload while a
/// background compactor is actively migrating and reclaiming underneath
/// it (the RAM hot tail is lost with the process). Replaying the same
/// history into the reopened node must converge on a state byte-identical
/// to the control's.
fn kill_mid_compaction_replays_identically(seed: u64) {
    let base =
        std::env::temp_dir().join(format!("tango-trim-race-{}-{seed:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let crash_dir = base.join("crash");
    let control_dir = base.join("control");

    let ops = seeded_workload(seed);
    let crash_at = ops.len() / 2 + (seed as usize % 7);

    // Control: the full history, no failure, no background compactor.
    let control = open_tiered_server(&control_dir);
    for op in &ops {
        apply(&control, op, false);
    }

    // Crash run: background compactor racing the workload, killed partway.
    {
        let server = open_tiered_server(&crash_dir);
        let mut compactor = Compactor::spawn(
            Arc::clone(&server),
            CompactorConfig { interval: Duration::from_millis(1), scrub_every: 3 },
        );
        for (i, op) in ops[..crash_at].iter().enumerate() {
            apply(&server, op, false);
            if i % 20 == 0 {
                // Yield so compaction passes interleave with the workload.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        compactor.stop();
        // Dropping the server drops the tiered store's RAM hot tail: every
        // page not yet migrated or synced dies with the "process".
    }

    // Restart and replay the whole history. Durable pages answer with
    // write-once arbitration, trimmed pages with trims; everything lost
    // with the hot tail is re-installed.
    let revived = open_tiered_server(&crash_dir);
    for op in &ops {
        apply(&revived, op, true);
    }

    // Let both nodes finish compacting, then compare every address.
    for server in [&revived, &control] {
        loop {
            let before = server.tier_stats();
            server.compact_once(true);
            if server.tier_stats() == before {
                break;
            }
        }
    }
    let scrub = revived.compact_once(true).scrub.expect("scrub requested");
    assert_eq!(scrub.errors, 0, "cold tier corrupt after crash+replay (seed {seed:#x})");

    let tail = 10 * 16;
    for addr in 0..tail {
        let read = |s: &StorageServer| s.process(StorageRequest::Read { epoch: 0, addr });
        assert_eq!(read(&revived), read(&control), "divergence at addr {addr} (seed {seed:#x})");
    }
    assert_eq!(revived.trim_horizon(), control.trim_horizon(), "seed {seed:#x}");
    assert_eq!(revived.occupancy(), control.occupancy(), "seed {seed:#x}");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn kill_mid_compaction_replays_identically_seed_a() {
    kill_mid_compaction_replays_identically(0xA5A5);
}

#[test]
fn kill_mid_compaction_replays_identically_seed_b() {
    kill_mid_compaction_replays_identically(0x5EED);
}
