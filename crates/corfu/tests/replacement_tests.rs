//! Storage-node replacement (chain rebuild): end-to-end over both cluster
//! harnesses, the transparent `ErrSealed` retry path for racing clients,
//! and convergence of concurrent replacements.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster, TcpCluster};
use corfu::proto::{StorageRequest, StorageResponse};
use corfu::reconfig::replace_storage_node;
use corfu::{CorfuError, LogOffset, ReadOutcome};
use parking_lot::Mutex;

/// The full rebuild over the in-process harness: data pages, a junk-filled
/// hole, a random trim mark, and the prefix-trim horizon all survive the
/// move to the replacement, and the replacement's flash is byte-identical
/// to the surviving replica's.
#[test]
fn replacement_preserves_log_contents() {
    let cluster =
        LocalCluster::new(ClusterConfig { num_sets: 2, replication: 2, ..Default::default() });
    let client = cluster.client().unwrap();

    let mut entries: Vec<(LogOffset, Bytes)> = Vec::new();
    for i in 0..24u32 {
        let payload = Bytes::from(format!("entry-{i}").into_bytes());
        let off = client.append(payload.clone()).unwrap();
        entries.push((off, payload));
    }
    // A junk page: reserve a token, never write it, patch it explicitly.
    let hole = client.token(&[]).unwrap().offset;
    assert_eq!(client.fill(hole).unwrap(), ReadOutcome::Junk);
    // A random trim mark and a prefix trim.
    let trimmed = entries[20].0;
    client.trim(trimmed).unwrap();
    let horizon = 5;
    client.trim_prefix(horizon).unwrap();

    // Kill the head of replica set 0 and rebuild it onto a fresh node.
    cluster.kill_storage_node(0);
    let (info, replacement) = cluster.spawn_replacement_storage();
    let outcome = replace_storage_node(&client, 0, info.clone()).unwrap();

    assert_eq!(outcome.chains_rebuilt, 1);
    assert!(outcome.pages_copied > 0, "the rebuild must move pages");
    assert!(outcome.bytes_copied > 0);
    assert_eq!(outcome.projection.epoch, 1);
    assert!(outcome.projection.log(0).replica_sets.iter().any(|set| set.contains(&info.id)));
    assert!(outcome.projection.log(0).replica_sets.iter().all(|set| !set.contains(&0)));

    // Every kind of page reads back exactly as before the failure.
    let reader = cluster.client().unwrap();
    for (off, payload) in &entries {
        let expect = if *off < horizon || *off == trimmed {
            None // trimmed
        } else {
            Some(payload)
        };
        match (expect, reader.read(*off).unwrap()) {
            (None, ReadOutcome::Trimmed) => {}
            (Some(payload), ReadOutcome::Data(_)) => {
                assert_eq!(&reader.read_entry(*off).unwrap().payload, payload);
            }
            (want, got) => panic!("offset {off}: wanted {want:?}, got {got:?}"),
        }
    }
    assert_eq!(reader.read(hole).unwrap(), ReadOutcome::Junk);

    // The replacement now heads chain 0: appends land on it.
    let post = client.append(Bytes::from_static(b"after-rebuild")).unwrap();
    assert_eq!(client.read_entry(post).unwrap().payload, Bytes::from_static(b"after-rebuild"));

    // Page-for-page, the replacement matches the surviving replica
    // (node 1, the copy source) across its whole local address space.
    let survivor = &cluster.storage()[1];
    let tail = match survivor.process(StorageRequest::LocalTail { epoch: 1 }) {
        StorageResponse::Tail(t) => t,
        other => panic!("local tail: {other:?}"),
    };
    assert_eq!(
        replacement.process(StorageRequest::LocalTail { epoch: 1 }),
        StorageResponse::Tail(tail)
    );
    for addr in 0..tail {
        assert_eq!(
            replacement.process(StorageRequest::Read { epoch: 1, addr }),
            survivor.process(StorageRequest::Read { epoch: 1, addr }),
            "replacement diverges from survivor at local address {addr}"
        );
    }
}

/// The same rebuild over real TCP sockets: kill a node's listener, splice
/// in a replacement on a fresh port.
#[test]
fn tcp_cluster_replacement_end_to_end() {
    let cluster =
        TcpCluster::spawn(ClusterConfig { num_sets: 2, replication: 2, ..Default::default() })
            .unwrap();
    let client = cluster.client().unwrap();

    let mut entries = Vec::new();
    for i in 0..12u32 {
        let payload = Bytes::from(format!("tcp-{i}").into_bytes());
        let off = client.append(payload.clone()).unwrap();
        entries.push((off, payload));
    }

    // Node 2 heads replica set 1.
    cluster.kill_storage_node(2);
    let info = cluster.spawn_replacement_storage().unwrap();
    let outcome = replace_storage_node(&client, 2, info.clone()).unwrap();
    assert!(outcome.pages_copied > 0);
    assert!(outcome.projection.log(0).replica_sets.iter().any(|set| set.contains(&info.id)));

    let post = client.append(Bytes::from_static(b"tcp-after")).unwrap();
    entries.push((post, Bytes::from_static(b"tcp-after")));
    for (off, payload) in &entries {
        assert_eq!(&client.read_entry(*off).unwrap().payload, payload);
    }
}

/// Regression: clients racing a replacement only ever observe `ErrSealed`,
/// which the retry path absorbs — no error may surface. The replaced node
/// stays alive (a decommission), so there is no disconnect window and any
/// surfaced error is a real retry-path bug.
#[test]
fn sealed_epoch_retry_is_transparent_to_racing_clients() {
    let cluster =
        LocalCluster::new(ClusterConfig { num_sets: 2, replication: 2, ..Default::default() });
    let setup = cluster.client().unwrap();
    let acked: Arc<Mutex<Vec<(LogOffset, Bytes)>>> = Arc::new(Mutex::new(Vec::new()));
    for i in 0..16u32 {
        let payload = Bytes::from(format!("warmup-{i}").into_bytes());
        let off = setup.append(payload.clone()).unwrap();
        acked.lock().push((off, payload));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let client = cluster.client().unwrap();
        let acked = Arc::clone(&acked);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let payload = Bytes::from(format!("race-{i}").into_bytes());
                let off = client
                    .append(payload.clone())
                    .expect("writer must ride out the seal transparently");
                acked.lock().push((off, payload));
                i += 1;
            }
            i
        })
    };
    let reader = {
        let client = cluster.client().unwrap();
        let acked = Arc::clone(&acked);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (off, payload) = acked.lock().last().cloned().unwrap();
                let entry =
                    client.read_entry(off).expect("reader must ride out the seal transparently");
                assert_eq!(entry.payload, payload);
                reads += 1;
            }
            reads
        })
    };

    // Decommission the live tail of replica set 0 mid-traffic.
    std::thread::sleep(std::time::Duration::from_millis(10));
    let coordinator = cluster.client().unwrap();
    let (info, _server) = cluster.spawn_replacement_storage();
    let outcome = replace_storage_node(&coordinator, 1, info).unwrap();
    assert_eq!(outcome.projection.epoch, 1);

    // Keep the race going briefly at the new epoch, then stop.
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);
    let appended = writer.join().unwrap();
    let reads = reader.join().unwrap();
    assert!(appended > 0, "writer made no progress");
    assert!(reads > 0, "reader made no progress");

    // Everything acked on either side of the epoch change is readable.
    let check = cluster.client().unwrap();
    for (off, payload) in acked.lock().iter() {
        assert_eq!(&check.read_entry(*off).unwrap().payload, payload);
    }
}

/// Two concurrent replacements of the same dead node converge: exactly one
/// wins the layout CAS; the loser gets `RaceLost` carrying the winning
/// epoch rather than an opaque layout error.
#[test]
fn concurrent_replacements_converge_on_one_winner() {
    let cluster =
        LocalCluster::new(ClusterConfig { num_sets: 1, replication: 2, ..Default::default() });
    let setup = cluster.client().unwrap();
    let mut entries = Vec::new();
    for i in 0..10u32 {
        let payload = Bytes::from(format!("pre-{i}").into_bytes());
        let off = setup.append(payload.clone()).unwrap();
        entries.push((off, payload));
    }

    cluster.kill_storage_node(0);
    let (info_a, _server_a) = cluster.spawn_replacement_storage();
    let (info_b, _server_b) = cluster.spawn_replacement_storage();
    let candidates = [info_a.id, info_b.id];

    let spawn_replacer = |info: corfu::NodeInfo| {
        let client = cluster.client().unwrap();
        std::thread::spawn(move || replace_storage_node(&client, 0, info))
    };
    let a = spawn_replacer(info_a);
    let b = spawn_replacer(info_b);
    let results = [a.join().unwrap(), b.join().unwrap()];

    let winners = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(winners, 1, "exactly one replacement must win: {results:?}");
    let installed = cluster.layout_client().get().unwrap();
    assert_eq!(installed.epoch, 1);
    for result in &results {
        match result {
            Ok(outcome) => assert_eq!(outcome.projection, installed),
            Err(CorfuError::RaceLost { winner }) => {
                // The loser learns exactly how far the cluster moved.
                assert_eq!(*winner, installed.epoch);
            }
            Err(other) => panic!("loser must surface RaceLost, got {other}"),
        }
    }
    // The installed chain holds exactly one of the two candidates.
    let chain = &installed.log(0).replica_sets[0];
    assert_eq!(chain.iter().filter(|n| candidates.contains(n)).count(), 1);
    assert!(!chain.contains(&0));

    // The cluster is fully functional under the winner.
    let client = cluster.client().unwrap();
    let post = client.append(Bytes::from_static(b"post-race")).unwrap();
    entries.push((post, Bytes::from_static(b"post-race")));
    for (off, payload) in &entries {
        assert_eq!(&client.read_entry(*off).unwrap().payload, payload);
    }
}
