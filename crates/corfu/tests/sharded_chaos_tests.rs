//! Deterministic chaos on a sharded log: log 1's sequencer is killed
//! mid-`multiappend` under a seeded [`FaultPlan`] schedule (the
//! `shard1.seq.*` points). The cluster must recover — a replacement
//! sequencer is rebuilt from a storage scan of its log only, log 0 never
//! changes epoch — and the decision rule (home anchor) must resolve every
//! speculative cross-log body as exactly committed or aborted. Because
//! every fault decision is a pure function of the seed, each schedule
//! replays an identical trace under the same `TANGO_FAULT_SEED`.

mod support;

use std::sync::mpsc;
use std::time::Duration;

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster, SEQUENCER_BASE_ID};
use corfu::reconfig::replace_sequencer_in_log;
use corfu::{
    compose, log_of_offset, ClientOptions, CorfuClient, CrossLogLink, EntryEnvelope, LogOffset,
    NodeId, Projection, ReadOutcome, StreamHeader, StreamId,
};
use support::fault::{FaultPlan, TraceEvent};
use support::{seed_from_env, SeedGuard};

const SEED_DEFAULT: u64 = 0xC0FF_EE00_0008;
/// The 1-based `shard1.seq.next` call that kills log 1's sequencer. One
/// call per cross-log append (single client, no token contention), so
/// appends `CRASH_NTH..` fail until the replacement is installed.
const CRASH_NTH: u64 = 7;
const APPENDS_BEFORE_RECOVERY: u32 = 12;
const APPENDS_AFTER_RECOVERY: u32 = 8;

fn stream_in_log(proj: &Projection, log: u32, from: StreamId) -> StreamId {
    (from..).find(|&s| proj.log_of_stream(s) == log).expect("shard map is total")
}

/// Scans every slot of every log and checks the cross-log decision
/// invariant: a body whose link's home slot holds a data entry with the
/// same link is committed — then *all* parts must hold that entry — and
/// any other home state (junk, foreign entry) means the body is aborted.
/// Unwritten slots (tokens abandoned when the sequencer died) are
/// hole-filled first, exactly as a reader would. Returns the number of
/// committed cross-log links seen.
fn assert_links_resolved(client: &CorfuClient) -> usize {
    let proj = client.projection();
    let mut committed = 0;
    for log in 0..proj.num_logs() {
        let tail = client.log_tail_fast(log).unwrap();
        for raw in 0..tail {
            let off = compose(log, raw);
            let outcome = match client.read(off).unwrap() {
                ReadOutcome::Unwritten => {
                    client.fill(off).unwrap();
                    client.read(off).unwrap()
                }
                other => other,
            };
            let ReadOutcome::Data(bytes) = outcome else { continue };
            let entry = EntryEnvelope::decode(&bytes, off).unwrap();
            let Some(link) = entry.link else { continue };
            let home_commits = match client.read(link.home).unwrap() {
                ReadOutcome::Data(home_bytes) => {
                    EntryEnvelope::decode(&home_bytes, link.home).unwrap().link.as_ref()
                        == Some(&link)
                }
                _ => false,
            };
            if home_commits {
                committed += 1;
                for &part in &link.parts {
                    let ReadOutcome::Data(part_bytes) = client.read(part).unwrap() else {
                        panic!("committed link {link:?} has an unwritten/junk part {part}");
                    };
                    let part_entry = EntryEnvelope::decode(&part_bytes, part).unwrap();
                    assert_eq!(
                        part_entry.link.as_ref(),
                        Some(&link),
                        "committed link must be present on every part"
                    );
                }
            } else {
                assert_ne!(off, link.home, "a home data entry always matches its own link");
            }
        }
    }
    committed
}

/// The acceptance scenario: cross-log multiappends flow until a planned
/// crash takes down log 1's sequencer at its `CRASH_NTH` token grant;
/// appends fail until a replacement sequencer is rebuilt (log 1 sealed
/// alone), then flow again. Every acked append stays readable, every
/// speculative body resolves, and the decision trace is returned for the
/// run-twice equality check. Single-threaded throughout so the trace is a
/// pure function of the seed.
fn sequencer_crash_scenario(seed: u64) -> Vec<TraceEvent> {
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let plan = FaultPlan::new(seed);
    plan.delay_calls("shard1.seq.", 25, 150);
    plan.crash_at("shard1.seq.next", CRASH_NTH);
    let (tx, rx) = mpsc::channel::<NodeId>();
    {
        let registry = cluster.registry().clone();
        plan.on_crash(move |node| {
            // Kill the sequencer for real so unwrapped clients see it too.
            registry.kill(&format!("sequencer-{node}"));
            let _ = tx.send(node);
        });
    }

    let client = cluster
        .client_with_factory(
            plan.wrap(cluster.conn_factory()),
            ClientOptions::default(),
            cluster.metrics().clone(),
        )
        .unwrap();
    let proj = client.projection();
    let s0 = stream_in_log(&proj, 0, 1);
    let s1 = stream_in_log(&proj, 1, 1);

    let mut acked: Vec<(LogOffset, Bytes)> = Vec::new();
    let mut failed = 0u32;
    for i in 0..APPENDS_BEFORE_RECOVERY {
        let payload = Bytes::from(format!("span-{i}").into_bytes());
        match client.append_streams(&[s0, s1], payload.clone()) {
            Ok((home, _)) => acked.push((home, payload)),
            Err(_) => failed += 1,
        }
    }
    assert_eq!(
        acked.len() as u64,
        CRASH_NTH - 1,
        "appends up to the planned crash commit, everything after fails"
    );
    assert!(failed > 0, "the crash must fail at least one multiappend");
    let crashed = rx.recv_timeout(Duration::from_secs(10)).expect("the planned crash must fire");
    assert_eq!((crashed - SEQUENCER_BASE_ID) % 100, 1, "the crash must hit log 1's sequencer");

    // Recover log 1 alone: seal it, rebuild stream state from its storage,
    // install a fresh sequencer. Log 0 keeps epoch 0 throughout.
    let (info, _replacement) = cluster.spawn_replacement_sequencer_for(1);
    let outcome = replace_sequencer_in_log(&client, 1, info, 4).unwrap();
    assert_eq!(outcome.projection.epoch_of_log(1), 1, "log 1 sealed into epoch 1");
    assert_eq!(outcome.projection.epoch_of_log(0), 0, "log 0 never reconfigures");

    // A stranded body, manufactured the way a lost-token race leaves one:
    // the body is written in log 1, but its home slot in log 0 gets
    // hole-filled before the anchor lands. The scan must call it aborted.
    let t0 = client.token(&[s0]).unwrap();
    let t1 = client.token(&[s1]).unwrap();
    let link = CrossLogLink { home: t0.offset, parts: vec![t0.offset, t1.offset] };
    let stranded = EntryEnvelope {
        headers: vec![StreamHeader { stream: s1, backpointers: t1.backpointers[0].clone() }],
        payload: Bytes::from_static(b"stranded"),
        link: Some(link),
    };
    client.write_at(t1.offset, &stranded.encode(t1.offset).unwrap()).unwrap();
    client.fill(t0.offset).unwrap();

    // Cross-log appends flow again through the replacement.
    for i in 0..APPENDS_AFTER_RECOVERY {
        let payload = Bytes::from(format!("post-{i}").into_bytes());
        let (home, _) = client.append_streams(&[s0, s1], payload.clone()).unwrap();
        acked.push((home, payload));
    }

    // Every acked multiappend is readable at its home with its payload.
    for (home, payload) in &acked {
        assert_eq!(&client.read_entry(*home).unwrap().payload, payload);
        assert_eq!(log_of_offset(*home), 0, "the home anchor lives in the lowest log");
    }

    // Every speculative body in both logs resolves; the committed count is
    // exactly the acked multiappends (×2 parts each counted once via the
    // body-side check... each committed link is seen from both parts).
    let committed_links_seen = assert_links_resolved(&client);
    assert_eq!(
        committed_links_seen,
        acked.len() * 2,
        "each acked link is observed from both of its parts, and nothing else commits"
    );

    plan.trace()
}

#[test]
fn sequencer_crash_mid_multiappend_resolves_every_body_deterministically() {
    let seed = seed_from_env(SEED_DEFAULT);
    let _guard = SeedGuard(seed);

    let first = sequencer_crash_scenario(seed);
    let second = sequencer_crash_scenario(seed);
    assert_eq!(first, second, "same seed must reproduce the identical trace");

    let crash = first.iter().find(|e| e.action == "crash").expect("crash must be in the trace");
    assert_eq!(crash.point, "shard1.seq.next");
    assert_eq!(crash.nth, CRASH_NTH);
    assert!(
        !first.iter().any(|e| e.action == "crash" && e.point.starts_with("seq.")),
        "log 0's sequencer must never be touched"
    );
}

/// A lossy, jittery network to log 1's sequencer only: multiappends slow
/// down (token grants retry through drops) but never wedge, log 0 is
/// untouched, and the schedule replays identically.
fn lossy_shard_scenario(seed: u64) -> Vec<TraceEvent> {
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let plan = FaultPlan::new(seed);
    plan.drop_calls("shard1.seq.next", 20);
    plan.delay_calls("shard1.seq.", 30, 120);

    let client = cluster
        .client_with_factory(
            plan.wrap(cluster.conn_factory()),
            ClientOptions::default(),
            cluster.metrics().clone(),
        )
        .unwrap();
    let proj = client.projection();
    let s0 = stream_in_log(&proj, 0, 1);
    let s1 = stream_in_log(&proj, 1, 1);

    let mut acked: Vec<(LogOffset, Bytes)> = Vec::new();
    for i in 0..16u32 {
        let payload = Bytes::from(format!("lossy-{i}").into_bytes());
        // A dropped token grant surfaces as a timeout; retry the append —
        // the retry loop itself is part of the deterministic trace.
        let home = loop {
            match client.append_streams(&[s0, s1], payload.clone()) {
                Ok((home, _)) => break home,
                Err(_) => continue,
            }
        };
        acked.push((home, payload));
    }

    for (home, payload) in &acked {
        assert_eq!(&client.read_entry(*home).unwrap().payload, payload);
    }
    assert_eq!(assert_links_resolved(&client), acked.len() * 2);
    plan.trace()
}

#[test]
fn lossy_shard_sequencer_slows_but_never_wedges_multiappends() {
    let seed = seed_from_env(SEED_DEFAULT ^ 0x5A5A);
    let _guard = SeedGuard(seed);

    let first = lossy_shard_scenario(seed);
    let second = lossy_shard_scenario(seed);
    assert_eq!(first, second, "same seed must reproduce the identical trace");
    assert!(
        first.iter().any(|e| e.action == "drop" && e.point == "shard1.seq.next"),
        "the schedule must actually drop shard-1 token grants"
    );
    assert!(
        !first.iter().any(|e| e.point.starts_with("seq.") && e.action != "pass"),
        "log 0's sequencer calls must pass untouched"
    );
}
