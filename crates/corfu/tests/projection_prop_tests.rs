//! Property tests for the projection's deterministic offset mapping (§2.2),
//! its behavior across storage-node replacement, and the shard map that
//! partitions the stream namespace across logs.

use corfu::{LogLayout, NodeInfo, Projection, ShardMap};
use proptest::prelude::*;

/// A projection with `nsets` replica sets of `repl` nodes each, ids
/// assigned sequentially, sequencer id 1000.
fn projection(nsets: usize, repl: usize) -> Projection {
    let mut replica_sets = Vec::new();
    let mut nodes = Vec::new();
    let mut next = 0u32;
    for _ in 0..nsets {
        let mut set = Vec::new();
        for _ in 0..repl {
            set.push(next);
            nodes.push(NodeInfo { id: next, addr: format!("node-{next}") });
            next += 1;
        }
        replica_sets.push(set);
    }
    nodes.push(NodeInfo { id: 1000, addr: "seq".into() });
    Projection::single(7, replica_sets, 1000, nodes)
}

proptest! {
    #[test]
    // Offsets range over the raw (in-log) space: the top byte of a
    // composite offset selects the log, and these projections have one.
    fn map_unmap_roundtrip(nsets in 1usize..9, repl in 1usize..4, offset in 0u64..(1 << corfu::LOG_SHIFT)) {
        let p = projection(nsets, repl);
        let (set, local) = p.map(offset);
        prop_assert!(set < nsets);
        prop_assert_eq!(p.unmap(set, local), offset);
        prop_assert_eq!(p.chain_for(offset), &p.log(0).replica_sets[set][..]);
    }

    #[test]
    fn unmap_map_roundtrip(nsets in 1usize..9, set_raw in any::<u32>(), local in 0u64..(1 << 40)) {
        let p = projection(nsets, 2);
        let set = (set_raw as usize) % nsets;
        let offset = p.unmap(set, local);
        prop_assert_eq!(p.map(offset), (set, local));
    }

    #[test]
    fn global_tail_matches_brute_force(local_tails in proptest::collection::vec(0u64..48, 1..6)) {
        let nsets = local_tails.len();
        let p = projection(nsets, 2);
        // Brute force: an offset is consumed iff its local address is below
        // its set's local tail; the global tail is one past the highest.
        let bound = 48 * nsets as u64;
        let mut brute = 0u64;
        for offset in 0..bound {
            let (set, local) = p.map(offset);
            if local < local_tails[set] {
                brute = offset + 1;
            }
        }
        prop_assert_eq!(p.global_tail_from_local(&local_tails), brute);
    }

    #[test]
    fn trim_horizon_matches_brute_force(nsets in 1usize..7, horizon in 0u64..256) {
        let p = projection(nsets, 2);
        for set in 0..nsets {
            // Brute force: count the global offsets below the horizon that
            // this set stores; they are exactly the local addresses trimmed.
            let brute = (0..horizon).filter(|&o| p.map(o).0 == set).count() as u64;
            prop_assert_eq!(p.local_trim_horizon_in_log(0, set, horizon), brute);
        }
    }

    #[test]
    fn replacement_preserves_mapping(
        nsets in 1usize..7,
        repl in 1usize..4,
        dead_raw in any::<u32>(),
        offsets in proptest::collection::vec(0u64..(1 << corfu::LOG_SHIFT), 1..32),
    ) {
        let p = projection(nsets, repl);
        let dead = dead_raw % (nsets * repl) as u32;
        let replacement = NodeInfo { id: 20_000, addr: "replacement".into() };
        let q = p.with_replaced_node(dead, &replacement);

        prop_assert_eq!(q.epoch, p.epoch + 1);
        prop_assert_eq!(q.num_sets(), p.num_sets());
        prop_assert_eq!(q.sequencer_of(0), p.sequencer_of(0));
        // The dead node is gone from chains and the address book; the
        // replacement holds exactly its old chain positions.
        prop_assert!(q.log(0).replica_sets.iter().all(|set| !set.contains(&dead)));
        prop_assert!(q.addr_of(dead).is_none());
        prop_assert!(q.addr_of(replacement.id).is_some());
        for (old_set, new_set) in p.log(0).replica_sets.iter().zip(&q.log(0).replica_sets) {
            prop_assert_eq!(old_set.len(), new_set.len());
            for (&old_node, &new_node) in old_set.iter().zip(new_set) {
                let expect = if old_node == dead { replacement.id } else { old_node };
                prop_assert_eq!(new_node, expect);
            }
        }
        // The striping function is untouched: every offset keeps its
        // (set, local) coordinates, so no data moves except the dead
        // node's pages.
        for &offset in &offsets {
            prop_assert_eq!(q.map(offset), p.map(offset));
        }
    }

    #[test]
    fn replacement_roundtrips_on_the_wire(nsets in 1usize..5, repl in 1usize..4, dead_raw in any::<u32>()) {
        let p = projection(nsets, repl);
        let dead = dead_raw % (nsets * repl) as u32;
        let q = p.with_replaced_node(dead, &NodeInfo { id: 20_000, addr: "replacement".into() });
        let bytes = tango_wire::encode_to_vec(&q);
        prop_assert_eq!(tango_wire::decode_from_slice::<Projection>(&bytes).unwrap(), q);
    }
}

/// A sharded projection: `num_logs` logs, one replica set of `repl` nodes
/// each, sequencer ids 1000 + log, hash-partitioned shard map.
fn sharded_projection(num_logs: u32, repl: usize) -> Projection {
    let mut logs = Vec::new();
    let mut nodes = Vec::new();
    let mut next = 0u32;
    for log in 0..num_logs {
        let mut set = Vec::new();
        for _ in 0..repl {
            set.push(next);
            nodes.push(NodeInfo { id: next, addr: format!("node-{next}") });
            next += 1;
        }
        let sequencer = 1000 + log;
        nodes.push(NodeInfo { id: sequencer, addr: format!("seq-{log}") });
        logs.push(LogLayout { epoch: 0, replica_sets: vec![set], sequencer });
    }
    Projection { epoch: 0, logs, shard: ShardMap::hashed(num_logs), nodes }
}

proptest! {
    // The shard map is total: every stream id — the entire u32 space, with
    // or without overrides — lands on a valid log.
    #[test]
    fn shard_map_is_total(
        num_logs in 1u32..16,
        streams in proptest::collection::vec(any::<u32>(), 1..64),
        overrides in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..8),
    ) {
        let mut map = ShardMap::hashed(num_logs);
        for (stream, log) in overrides {
            // Overrides may name any log id; placement still clamps into
            // range (a remap race can leave an override for a log count
            // that a later projection shrank).
            map = map.with_override(stream, log);
        }
        for stream in streams {
            prop_assert!(map.log_of(stream) < num_logs);
        }
    }

    // Placement is a pure function of the map's encoded fields: a map
    // rebuilt from its wire form — i.e. by another process — places every
    // stream identically. No hidden state survives encoding.
    #[test]
    fn shard_map_is_deterministic_across_the_wire(
        num_logs in 1u32..16,
        pins in proptest::collection::vec((any::<u32>(), 0u32..16), 0..6),
        streams in proptest::collection::vec(any::<u32>(), 1..64),
    ) {
        let mut map = ShardMap::hashed(num_logs);
        for &(stream, log) in &pins {
            map = map.with_override(stream, log % num_logs);
        }
        let decoded: ShardMap =
            tango_wire::decode_from_slice(&tango_wire::encode_to_vec(&map)).unwrap();
        prop_assert_eq!(&decoded, &map);
        for stream in streams {
            prop_assert_eq!(decoded.log_of(stream), map.log_of(stream));
        }
    }

    // Replacing a storage node inside one log never moves a stream: the
    // shard map rides into the new projection untouched, so recovery
    // cannot silently re-home anyone's data.
    #[test]
    fn replacement_is_stable_for_the_shard_map(
        num_logs in 1u32..6,
        repl in 1usize..4,
        dead_raw in any::<u32>(),
        streams in proptest::collection::vec(any::<u32>(), 1..64),
    ) {
        let p = sharded_projection(num_logs, repl);
        let dead = dead_raw % (num_logs * repl as u32);
        let q = p.with_replaced_node(dead, &NodeInfo { id: 20_000, addr: "replacement".into() });
        prop_assert_eq!(&q.shard, &p.shard);
        for stream in streams {
            prop_assert_eq!(q.log_of_stream(stream), p.log_of_stream(stream));
        }
        // Only the dead node's log changed epoch; the others still accept
        // their outstanding tokens.
        let dead_log = (dead / repl as u32) as usize;
        for (idx, (old, new)) in p.logs.iter().zip(&q.logs).enumerate() {
            if idx == dead_log {
                prop_assert_eq!(new.epoch, old.epoch + 1);
            } else {
                prop_assert_eq!(new.epoch, old.epoch);
            }
        }
    }

    // An override pins exactly one stream; every other stream's placement
    // is untouched (the hash itself never changes).
    #[test]
    fn override_pins_only_that_stream(
        num_logs in 2u32..8,
        pinned in any::<u32>(),
        to_log in 0u32..8,
        streams in proptest::collection::vec(any::<u32>(), 1..64),
    ) {
        let base = ShardMap::hashed(num_logs);
        let to_log = to_log % num_logs;
        let mapped = base.with_override(pinned, to_log);
        prop_assert_eq!(mapped.log_of(pinned), to_log);
        for stream in streams {
            if stream != pinned {
                prop_assert_eq!(mapped.log_of(stream), base.log_of(stream));
            }
        }
        // Re-pinning replaces the override rather than accumulating.
        let again = mapped.with_override(pinned, to_log);
        prop_assert_eq!(again.overrides.len(), mapped.overrides.len());
    }
}
