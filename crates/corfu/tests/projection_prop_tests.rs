//! Property tests for the projection's deterministic offset mapping (§2.2)
//! and its behavior across storage-node replacement.

use corfu::{NodeInfo, Projection};
use proptest::prelude::*;

/// A projection with `nsets` replica sets of `repl` nodes each, ids
/// assigned sequentially, sequencer id 1000.
fn projection(nsets: usize, repl: usize) -> Projection {
    let mut replica_sets = Vec::new();
    let mut nodes = Vec::new();
    let mut next = 0u32;
    for _ in 0..nsets {
        let mut set = Vec::new();
        for _ in 0..repl {
            set.push(next);
            nodes.push(NodeInfo { id: next, addr: format!("node-{next}") });
            next += 1;
        }
        replica_sets.push(set);
    }
    nodes.push(NodeInfo { id: 1000, addr: "seq".into() });
    Projection { epoch: 7, replica_sets, sequencer: 1000, nodes }
}

proptest! {
    #[test]
    fn map_unmap_roundtrip(nsets in 1usize..9, repl in 1usize..4, offset in any::<u64>()) {
        let p = projection(nsets, repl);
        let (set, local) = p.map(offset);
        prop_assert!(set < nsets);
        prop_assert_eq!(p.unmap(set, local), offset);
        prop_assert_eq!(p.chain_for(offset), &p.replica_sets[set][..]);
    }

    #[test]
    fn unmap_map_roundtrip(nsets in 1usize..9, set_raw in any::<u32>(), local in 0u64..(1 << 40)) {
        let p = projection(nsets, 2);
        let set = (set_raw as usize) % nsets;
        let offset = p.unmap(set, local);
        prop_assert_eq!(p.map(offset), (set, local));
    }

    #[test]
    fn global_tail_matches_brute_force(local_tails in proptest::collection::vec(0u64..48, 1..6)) {
        let nsets = local_tails.len();
        let p = projection(nsets, 2);
        // Brute force: an offset is consumed iff its local address is below
        // its set's local tail; the global tail is one past the highest.
        let bound = 48 * nsets as u64;
        let mut brute = 0u64;
        for offset in 0..bound {
            let (set, local) = p.map(offset);
            if local < local_tails[set] {
                brute = offset + 1;
            }
        }
        prop_assert_eq!(p.global_tail_from_local(&local_tails), brute);
    }

    #[test]
    fn trim_horizon_matches_brute_force(nsets in 1usize..7, horizon in 0u64..256) {
        let p = projection(nsets, 2);
        for set in 0..nsets {
            // Brute force: count the global offsets below the horizon that
            // this set stores; they are exactly the local addresses trimmed.
            let brute = (0..horizon).filter(|&o| p.map(o).0 == set).count() as u64;
            prop_assert_eq!(p.local_trim_horizon(set, horizon), brute);
        }
    }

    #[test]
    fn replacement_preserves_mapping(
        nsets in 1usize..7,
        repl in 1usize..4,
        dead_raw in any::<u32>(),
        offsets in proptest::collection::vec(any::<u64>(), 1..32),
    ) {
        let p = projection(nsets, repl);
        let dead = dead_raw % (nsets * repl) as u32;
        let replacement = NodeInfo { id: 20_000, addr: "replacement".into() };
        let q = p.with_replaced_node(dead, &replacement);

        prop_assert_eq!(q.epoch, p.epoch + 1);
        prop_assert_eq!(q.num_sets(), p.num_sets());
        prop_assert_eq!(q.sequencer, p.sequencer);
        // The dead node is gone from chains and the address book; the
        // replacement holds exactly its old chain positions.
        prop_assert!(q.replica_sets.iter().all(|set| !set.contains(&dead)));
        prop_assert!(q.addr_of(dead).is_none());
        prop_assert!(q.addr_of(replacement.id).is_some());
        for (old_set, new_set) in p.replica_sets.iter().zip(&q.replica_sets) {
            prop_assert_eq!(old_set.len(), new_set.len());
            for (&old_node, &new_node) in old_set.iter().zip(new_set) {
                let expect = if old_node == dead { replacement.id } else { old_node };
                prop_assert_eq!(new_node, expect);
            }
        }
        // The striping function is untouched: every offset keeps its
        // (set, local) coordinates, so no data moves except the dead
        // node's pages.
        for &offset in &offsets {
            prop_assert_eq!(q.map(offset), p.map(offset));
        }
    }

    #[test]
    fn replacement_roundtrips_on_the_wire(nsets in 1usize..5, repl in 1usize..4, dead_raw in any::<u32>()) {
        let p = projection(nsets, repl);
        let dead = dead_raw % (nsets * repl) as u32;
        let q = p.with_replaced_node(dead, &NodeInfo { id: 20_000, addr: "replacement".into() });
        let bytes = tango_wire::encode_to_vec(&q);
        prop_assert_eq!(tango_wire::decode_from_slice::<Projection>(&bytes).unwrap(), q);
    }
}
