//! NIC and link models.

use crate::sim::SimTime;

/// Per-node network interface configuration.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Egress bandwidth in bytes/second (gigabit NIC: 125_000_000).
    pub bw_out: u64,
    /// Ingress bandwidth in bytes/second.
    pub bw_in: u64,
    /// Rack the node sits in (used by [`LinkLatency`]).
    pub rack: u8,
}

impl NodeConfig {
    /// A gigabit-NIC node (the paper's clients and storage nodes).
    pub fn gigabit(rack: u8) -> Self {
        Self { bw_out: 125_000_000, bw_in: 125_000_000, rack }
    }

    /// A ten-gigabit node (the paper's 32-core sequencer machine).
    pub fn ten_gigabit(rack: u8) -> Self {
        Self { bw_out: 1_250_000_000, bw_in: 1_250_000_000, rack }
    }
}

/// One-way propagation latency between nodes.
#[derive(Debug, Clone, Copy)]
pub struct LinkLatency {
    /// Latency within a rack (ns).
    pub same_rack: SimTime,
    /// Latency across the top-of-rack switches (ns).
    pub cross_rack: SimTime,
}

impl LinkLatency {
    /// The testbed's LAN: tens of microseconds either way.
    pub fn lan() -> Self {
        Self { same_rack: 40 * crate::US, cross_rack: 55 * crate::US }
    }

    /// The one-way latency between two racks.
    pub fn between(&self, a: u8, b: u8) -> SimTime {
        if a == b {
            self.same_rack
        } else {
            self.cross_rack
        }
    }
}

/// Mutable NIC state for one node.
#[derive(Debug, Clone, Default)]
pub(crate) struct NicState {
    pub out_free_at: SimTime,
    pub in_free_at: SimTime,
    pub bytes_out: u64,
    pub bytes_in: u64,
}

/// Computes the serialization delay of `bytes` at `bw` bytes/sec.
pub(crate) fn ser_delay(bytes: u64, bw: u64) -> SimTime {
    // ns = bytes * 1e9 / bw, computed without overflow for sane inputs.
    bytes.saturating_mul(1_000_000_000) / bw.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_serialization() {
        // 4KB at 1 Gb/s = 32.768 microseconds.
        let d = ser_delay(4096, 125_000_000);
        assert_eq!(d, 32_768);
    }
}
