//! The event loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::net::{ser_delay, LinkLatency, NicState, NodeConfig};

/// Simulation time in nanoseconds.
pub type SimTime = u64;

/// Index of a simulated machine.
pub type NodeId = usize;

/// Index of an actor (a process on a machine).
pub type ActorId = usize;

/// Behaviour of one simulated process.
pub trait Actor<M> {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Called for each delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ActorId, msg: M);

    /// Called when a timer set with [`Ctx::after`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _tag: u64) {}
}

enum Payload<M> {
    Message { from: ActorId, msg: M },
    Timer { tag: u64 },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    to: ActorId,
    payload: Payload<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ties broken by insertion sequence: deterministic.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Shared<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Event<M>>>,
    nics: Vec<NicState>,
    node_cfg: Vec<NodeConfig>,
    actor_node: Vec<NodeId>,
    latency: LinkLatency,
    stopped: bool,
}

impl<M> Shared<M> {
    fn push(&mut self, at: SimTime, to: ActorId, payload: Payload<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { at, seq, to, payload }));
    }

    /// Routes a message through the NIC/link model and schedules delivery.
    fn send(&mut self, from: ActorId, to: ActorId, msg: M, bytes: u64) {
        let src = self.actor_node[from];
        let dst = self.actor_node[to];
        let deliver_at = if src == dst {
            // Loopback: no NIC involvement, fixed small cost.
            self.now + 2 * crate::US
        } else {
            let out_bw = self.node_cfg[src].bw_out;
            let in_bw = self.node_cfg[dst].bw_in;
            let start = self.nics[src].out_free_at.max(self.now);
            let out_done = start + ser_delay(bytes, out_bw);
            self.nics[src].out_free_at = out_done;
            self.nics[src].bytes_out += bytes;
            let racks = (self.node_cfg[src].rack, self.node_cfg[dst].rack);
            let arrival = out_done + self.latency.between(racks.0, racks.1);
            let rx_start = self.nics[dst].in_free_at.max(arrival);
            let rx_done = rx_start + ser_delay(bytes, in_bw);
            self.nics[dst].in_free_at = rx_done;
            self.nics[dst].bytes_in += bytes;
            rx_done
        };
        self.push(deliver_at, to, Payload::Message { from, msg });
    }
}

/// The context actors use to interact with the world.
pub struct Ctx<'a, M> {
    shared: &'a mut Shared<M>,
    me: ActorId,
}

impl<M> Ctx<'_, M> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.shared.now
    }

    /// This actor's id.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Sends `msg` of `bytes` on-the-wire size to another actor, shaped by
    /// both NICs and the link latency.
    pub fn send(&mut self, to: ActorId, msg: M, bytes: u64) {
        self.shared.send(self.me, to, msg, bytes);
    }

    /// Schedules [`Actor::on_timer`] with `tag` after `delay`.
    pub fn after(&mut self, delay: SimTime, tag: u64) {
        let at = self.shared.now + delay;
        self.shared.push(at, self.me, Payload::Timer { tag });
    }

    /// Halts the simulation after the current event.
    pub fn stop(&mut self) {
        self.shared.stopped = true;
    }
}

/// The simulator: nodes, actors, and the event heap.
pub struct Sim<M> {
    shared: Shared<M>,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    started: bool,
}

impl<M> Sim<M> {
    /// Creates an empty world with the given link latency model.
    pub fn new(latency: LinkLatency) -> Self {
        Self {
            shared: Shared {
                now: 0,
                seq: 0,
                queue: BinaryHeap::new(),
                nics: Vec::new(),
                node_cfg: Vec::new(),
                actor_node: Vec::new(),
                latency,
                stopped: false,
            },
            actors: Vec::new(),
            started: false,
        }
    }

    /// Adds a machine.
    pub fn add_node(&mut self, cfg: NodeConfig) -> NodeId {
        self.shared.node_cfg.push(cfg);
        self.shared.nics.push(NicState::default());
        self.shared.node_cfg.len() - 1
    }

    /// Adds an actor running on `node`.
    pub fn add_actor(&mut self, node: NodeId, actor: Box<dyn Actor<M>>) -> ActorId {
        assert!(node < self.shared.node_cfg.len(), "unknown node");
        self.actors.push(Some(actor));
        self.shared.actor_node.push(node);
        self.actors.len() - 1
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.shared.now
    }

    /// Bytes received so far by `node`'s NIC.
    pub fn node_bytes_in(&self, node: NodeId) -> u64 {
        self.shared.nics[node].bytes_in
    }

    /// Bytes sent so far by `node`'s NIC.
    pub fn node_bytes_out(&self, node: NodeId) -> u64 {
        self.shared.nics[node].bytes_out
    }

    fn start(&mut self) {
        for id in 0..self.actors.len() {
            let mut actor = self.actors[id].take().expect("actor present");
            let mut ctx = Ctx { shared: &mut self.shared, me: id };
            actor.on_start(&mut ctx);
            self.actors[id] = Some(actor);
        }
        self.started = true;
    }

    /// Runs until `deadline` (or until an actor calls [`Ctx::stop`] or the
    /// event queue drains). Returns the time reached.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        if !self.started {
            self.start();
        }
        while !self.shared.stopped {
            let Some(Reverse(head)) = self.shared.queue.peek() else { break };
            if head.at > deadline {
                break;
            }
            let Reverse(event) = self.shared.queue.pop().expect("peeked");
            self.shared.now = event.at;
            let mut actor = self.actors[event.to].take().expect("actor present");
            {
                let mut ctx = Ctx { shared: &mut self.shared, me: event.to };
                match event.payload {
                    Payload::Message { from, msg } => actor.on_message(&mut ctx, from, msg),
                    Payload::Timer { tag } => actor.on_timer(&mut ctx, tag),
                }
            }
            self.actors[event.to] = Some(actor);
        }
        self.shared.now
    }

    /// Borrow an actor back (downcasting is the caller's business) to read
    /// collected metrics after the run.
    pub fn actor(&self, id: ActorId) -> &dyn Actor<M> {
        self.actors[id].as_deref().expect("actor present")
    }

    /// Mutable actor access for post-run extraction.
    pub fn actor_mut(&mut self, id: ActorId) -> &mut dyn Actor<M> {
        self.actors[id].as_deref_mut().expect("actor present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeConfig, US};

    /// Ping-pong: A sends to B, B replies, N rounds; checks latency math
    /// and determinism.
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    #[derive(Default)]
    struct Pinger {
        peer: ActorId,
        rounds: u32,
        done_at: SimTime,
        log: Vec<SimTime>,
    }

    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.send(self.peer, Msg::Ping(0), 100);
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
            if let Msg::Pong(n) = msg {
                self.log.push(ctx.now());
                if n + 1 < self.rounds {
                    ctx.send(self.peer, Msg::Ping(n + 1), 100);
                } else {
                    self.done_at = ctx.now();
                    ctx.stop();
                }
            }
        }
    }

    struct Ponger;

    impl Actor<Msg> for Ponger {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
            if let Msg::Ping(n) = msg {
                ctx.send(from, Msg::Pong(n), 100);
            }
        }
    }

    fn run_pingpong(rounds: u32) -> (SimTime, Vec<SimTime>) {
        let mut sim: Sim<Msg> = Sim::new(LinkLatency::lan());
        let a = sim.add_node(NodeConfig::gigabit(0));
        let b = sim.add_node(NodeConfig::gigabit(1));
        let ponger = sim.add_actor(b, Box::new(Ponger));
        let pinger =
            sim.add_actor(a, Box::new(Pinger { peer: ponger, rounds, ..Default::default() }));
        sim.run_until(u64::MAX);
        let _ = pinger;
        let done = sim.now();
        // Extract the log via a fresh run (the trait object hides it), so
        // just return done time twice for the determinism check.
        (done, vec![done])
    }

    #[test]
    fn pingpong_latency_math() {
        let (done, _) = run_pingpong(1);
        // One round trip: 2 * (ser(100B) + cross-rack latency + ser(100B)).
        // ser(100B at 1Gb/s) = 800ns.
        let one_way = 800 + 55 * US + 800;
        assert_eq!(done, 2 * one_way);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_pingpong(50);
        let b = run_pingpong(50);
        assert_eq!(a, b);
    }

    #[test]
    fn bandwidth_is_a_bottleneck() {
        // Blast 1000 x 4KB messages from one node; the receiver's NIC can
        // only absorb 125 MB/s, so total time >= 1000*4096/125e6 seconds.
        struct Blaster {
            peer: ActorId,
        }
        impl Actor<Msg> for Blaster {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                for i in 0..1000 {
                    ctx.send(self.peer, Msg::Ping(i), 4096);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: ActorId, _: Msg) {}
        }
        struct Sink {
            received: u32,
            last_at: SimTime,
        }
        impl Actor<Msg> for Sink {
            fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _: ActorId, _: Msg) {
                self.received += 1;
                self.last_at = ctx.now();
                if self.received == 1000 {
                    ctx.stop();
                }
            }
        }
        let mut sim: Sim<Msg> = Sim::new(LinkLatency::lan());
        let a = sim.add_node(NodeConfig::gigabit(0));
        let b = sim.add_node(NodeConfig::gigabit(0));
        let sink = sim.add_actor(b, Box::new(Sink { received: 0, last_at: 0 }));
        sim.add_actor(a, Box::new(Blaster { peer: sink }));
        sim.run_until(u64::MAX);
        let wire_time = 1000u64 * 4096 * 1_000_000_000 / 125_000_000;
        assert!(sim.now() >= wire_time, "{} < {wire_time}", sim.now());
        assert!(sim.now() < wire_time + 10 * crate::MS);
    }
}
