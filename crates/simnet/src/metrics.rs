//! Measurement utilities.

/// A log-bucketed histogram of u64 samples (latencies in ns).
///
/// Buckets are powers of two subdivided 16 ways, giving <= 6.25% relative
/// error — plenty for reproducing the shapes of latency/throughput figures.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

const SUB: u64 = 16;

fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64;
    let base = exp * SUB;
    let sub = (v >> (exp - 4)) & (SUB - 1);
    (base + sub) as usize
}

fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let exp = idx / SUB;
    let sub = idx % SUB;
    (1 << exp) + (sub << (exp - 4))
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { buckets: vec![0; 64 * SUB as usize], count: 0, sum: 0, max: 0, min: u64::MAX }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-quantile (0.0..=1.0), approximated to bucket resolution.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p).ceil() as u64;
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_floor(idx);
            }
        }
        self.max
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest sample (0 with no samples).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 0.01);
        let p50 = h.percentile(0.5);
        assert!((450..=550).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile(0.99);
        assert!((930..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn bucket_relative_error_bounded() {
        for v in [1u64, 100, 1_000, 50_000, 1_000_000, u32::MAX as u64] {
            let floor = bucket_floor(bucket_of(v));
            assert!(floor <= v);
            assert!(v - floor <= v / 8, "floor {floor} too far below {v}");
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(20);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 20);
        assert_eq!(a.min(), 10);
    }
}
