//! Service-time instruments for the flash device (`flash.*`).
//!
//! The storage RPC layer measures *queue wait* (how long a request sat
//! behind the unit's lock); these histograms measure the *service time*
//! once the device is actually working — the split the latency
//! decomposition in EXPERIMENTS.md is built on. Timers are paced by a
//! shared 1-in-16 [`Sampler`] like every other hot-path histogram in the
//! tree, so the common case pays one relaxed counter increment and no
//! clock reads.

use tango_metrics::{Histogram, Registry, Sampler};

/// Per-operation service-time histograms for a [`crate::FlashUnit`].
///
/// Defaults to disabled (no-op) handles; bind with
/// [`FlashMetrics::from_registry`] and install via
/// [`crate::FlashUnit::set_metrics`].
#[derive(Clone, Default)]
pub struct FlashMetrics {
    /// Service time of successful data writes, ns (sampled).
    pub write_service_ns: Histogram,
    /// Service time of reads, ns (sampled). All outcomes count — data,
    /// junk, unwritten, trimmed — since the device does index work for
    /// each.
    pub read_service_ns: Histogram,
    /// Service time of successful junk fills, ns (sampled).
    pub fill_service_ns: Histogram,
    /// Service time of trims — single-address and prefix, ns (sampled).
    pub trim_service_ns: Histogram,
    /// Gate pacing the histograms above.
    pub sampler: Sampler,
}

impl FlashMetrics {
    /// Binds the `flash.*` names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        Self {
            write_service_ns: registry.histogram("flash.write.service_ns"),
            read_service_ns: registry.histogram("flash.read.service_ns"),
            fill_service_ns: registry.histogram("flash.fill.service_ns"),
            trim_service_ns: registry.histogram("flash.trim.service_ns"),
            sampler: Sampler::default(),
        }
    }
}
