//! Segmented slot-file page store.
//!
//! Layout:
//!
//! * `<dir>/meta` — unit metadata (magic, geometry, epoch, prefix-trim),
//!   rewritten atomically via a temp file + rename.
//! * `<dir>/seg-<n>.dat` — `pages_per_segment` fixed-size slots. Each slot is
//!   a 32-byte header followed by `page_size` payload bytes. The header
//!   carries a magic, the slot state, the payload length, a CRC-32C of the
//!   payload, and the page address (as a torn-write guard: a slot whose
//!   header or CRC fails validation is treated as unwritten, which is safe
//!   because CORFU clients retry or fill incomplete writes).
//!
//! The address space is sparse; segment files are created on demand and
//! sized `slot_size * pages_per_segment` (the filesystem keeps them sparse
//! until slots are written).

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use tango_wire::crc32c;

use crate::store::{PageKind, PageStore, ScannedPage, ScannedState, ScrubReport};
use crate::{FlashError, PageAddr, Result};

const SLOT_MAGIC: u32 = 0xC0_4F_5E_01;
const META_MAGIC: u32 = 0xC0_4F_5E_02;
const HEADER_LEN: usize = 32;

const STATE_DATA: u8 = 1;
const STATE_JUNK: u8 = 2;
const STATE_TRIMMED: u8 = 3;

/// A durable [`PageStore`] over segmented slot files.
pub struct FileStore {
    dir: PathBuf,
    page_size: usize,
    pages_per_segment: u64,
    segments: HashMap<u64, File>,
}

impl FileStore {
    /// Opens (or creates) a store rooted at `dir` with the given geometry.
    ///
    /// Opening an existing store validates that the geometry matches what it
    /// was created with.
    pub fn open(dir: impl AsRef<Path>, page_size: usize, pages_per_segment: u64) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let store = Self { dir, page_size, pages_per_segment, segments: HashMap::new() };
        if let Some((stored_page_size, stored_pps)) = store.read_geometry()? {
            if stored_page_size != page_size as u64 || stored_pps != pages_per_segment {
                return Err(FlashError::Corrupt(format!(
                    "geometry mismatch: store has page_size={stored_page_size}, \
                     pages_per_segment={stored_pps}"
                )));
            }
        }
        Ok(store)
    }

    fn slot_size(&self) -> u64 {
        HEADER_LEN as u64 + self.page_size as u64
    }

    fn locate(&self, addr: PageAddr) -> (u64, u64) {
        let seg = addr / self.pages_per_segment;
        let slot = addr % self.pages_per_segment;
        (seg, slot * self.slot_size())
    }

    fn segment_path(&self, seg: u64) -> PathBuf {
        self.dir.join(format!("seg-{seg}.dat"))
    }

    fn meta_path(&self) -> PathBuf {
        self.dir.join("meta")
    }

    fn segment(&mut self, seg: u64) -> Result<&File> {
        if !self.segments.contains_key(&seg) {
            let path = self.segment_path(seg);
            // Segments are reopened across restarts; never truncate.
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(path)?;
            file.set_len(self.slot_size() * self.pages_per_segment)?;
            self.segments.insert(seg, file);
        }
        Ok(self.segments.get(&seg).expect("just inserted"))
    }

    fn segment_readonly(&self, seg: u64) -> Result<Option<File>> {
        match File::open(self.segment_path(seg)) {
            Ok(f) => Ok(Some(f)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn encode_header(state: u8, len: u32, crc: u32, addr: PageAddr) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..4].copy_from_slice(&SLOT_MAGIC.to_le_bytes());
        h[4] = state;
        h[5..9].copy_from_slice(&len.to_le_bytes());
        h[9..13].copy_from_slice(&crc.to_le_bytes());
        h[13..21].copy_from_slice(&addr.to_le_bytes());
        // Header self-checksum over the first 21 bytes.
        let hcrc = crc32c(&h[..21]);
        h[21..25].copy_from_slice(&hcrc.to_le_bytes());
        h
    }

    fn decode_header(h: &[u8], expect_addr: Option<PageAddr>) -> Option<(u8, u32, u32, PageAddr)> {
        if h.len() < HEADER_LEN {
            return None;
        }
        let magic = u32::from_le_bytes(h[0..4].try_into().ok()?);
        if magic != SLOT_MAGIC {
            return None;
        }
        let hcrc = u32::from_le_bytes(h[21..25].try_into().ok()?);
        if crc32c(&h[..21]) != hcrc {
            return None;
        }
        let state = h[4];
        let len = u32::from_le_bytes(h[5..9].try_into().ok()?);
        let crc = u32::from_le_bytes(h[9..13].try_into().ok()?);
        let addr = u64::from_le_bytes(h[13..21].try_into().ok()?);
        if let Some(expect) = expect_addr {
            if addr != expect {
                return None;
            }
        }
        Some((state, len, crc, addr))
    }

    fn read_geometry(&self) -> Result<Option<(u64, u64)>> {
        match fs::read(self.meta_path()) {
            Ok(bytes) => {
                let meta = Self::decode_meta(&bytes)?;
                Ok(Some((meta.1, meta.2)))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// The number of page slots per segment file.
    pub fn pages_per_segment(&self) -> u64 {
        self.pages_per_segment
    }

    /// Lists the ids of segment files currently on disk, ascending.
    pub fn segment_ids(&self) -> Result<Vec<u64>> {
        let mut seg_ids = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix("seg-").and_then(|r| r.strip_suffix(".dat")) {
                if let Ok(id) = rest.parse::<u64>() {
                    seg_ids.push(id);
                }
            }
        }
        seg_ids.sort_unstable();
        Ok(seg_ids)
    }

    /// Deletes every segment file whose entire address range falls strictly
    /// below `horizon`, returning the reclaimed segment ids. The caller must
    /// have persisted a prefix-trim horizon at or above `horizon` first, so
    /// a crash between the meta write and the unlinks recovers cleanly (the
    /// scan ignores addresses below the horizon either way).
    pub fn remove_segments_below(&mut self, horizon: PageAddr) -> Result<Vec<u64>> {
        let mut removed = Vec::new();
        for seg in self.segment_ids()? {
            let seg_end = (seg + 1).saturating_mul(self.pages_per_segment);
            if seg_end <= horizon {
                self.segments.remove(&seg);
                fs::remove_file(self.segment_path(seg))?;
                removed.push(seg);
            }
        }
        Ok(removed)
    }

    fn decode_meta(bytes: &[u8]) -> Result<(u32, u64, u64, u64, u64)> {
        if bytes.len() != 40 {
            return Err(FlashError::Corrupt("bad meta length".into()));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if magic != META_MAGIC {
            return Err(FlashError::Corrupt("bad meta magic".into()));
        }
        let crc = u32::from_le_bytes(bytes[36..40].try_into().unwrap());
        if crc32c(&bytes[..36]) != crc {
            return Err(FlashError::Corrupt("meta checksum mismatch".into()));
        }
        let page_size = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
        let pps = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let epoch = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
        let prefix_trim = u64::from_le_bytes(bytes[28..36].try_into().unwrap());
        Ok((magic, page_size, pps, epoch, prefix_trim))
    }
}

impl PageStore for FileStore {
    fn put(&mut self, addr: PageAddr, kind: PageKind, data: &[u8]) -> Result<()> {
        if data.len() > self.page_size {
            return Err(FlashError::PageTooLarge { len: data.len(), page_size: self.page_size });
        }
        let (seg, off) = self.locate(addr);
        let state = match kind {
            PageKind::Data => STATE_DATA,
            PageKind::Junk => STATE_JUNK,
        };
        let header = Self::encode_header(state, data.len() as u32, crc32c(data), addr);
        let file = self.segment(seg)?;
        // Payload first, header last: a torn write leaves an invalid header
        // and the slot reads as unwritten.
        file.write_all_at(data, off + HEADER_LEN as u64)?;
        file.write_all_at(&header, off)?;
        Ok(())
    }

    fn get(&self, addr: PageAddr) -> Result<Option<(PageKind, Bytes)>> {
        let (seg, off) = self.locate(addr);
        let Some(file) = self.segment_readonly(seg)? else {
            return Ok(None);
        };
        let mut header = [0u8; HEADER_LEN];
        if file.read_exact_at(&mut header, off).is_err() {
            return Ok(None);
        }
        let Some((state, len, crc, _)) = Self::decode_header(&header, Some(addr)) else {
            return Ok(None);
        };
        match state {
            STATE_DATA => {
                let mut payload = vec![0u8; len as usize];
                file.read_exact_at(&mut payload, off + HEADER_LEN as u64)?;
                if crc32c(&payload) != crc {
                    return Err(FlashError::Corrupt(format!("payload CRC mismatch at {addr}")));
                }
                Ok(Some((PageKind::Data, Bytes::from(payload))))
            }
            STATE_JUNK => Ok(Some((PageKind::Junk, Bytes::new()))),
            // Trimmed slots are reported as absent; the unit tracks trims.
            STATE_TRIMMED => Ok(None),
            _ => Ok(None),
        }
    }

    fn mark_trimmed(&mut self, addr: PageAddr) -> Result<()> {
        let (seg, off) = self.locate(addr);
        let header = Self::encode_header(STATE_TRIMMED, 0, 0, addr);
        let file = self.segment(seg)?;
        file.write_all_at(&header, off)?;
        Ok(())
    }

    fn put_meta(&mut self, epoch: u64, prefix_trim: PageAddr) -> Result<()> {
        let mut bytes = Vec::with_capacity(40);
        bytes.extend_from_slice(&META_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&(self.page_size as u64).to_le_bytes());
        bytes.extend_from_slice(&self.pages_per_segment.to_le_bytes());
        bytes.extend_from_slice(&epoch.to_le_bytes());
        bytes.extend_from_slice(&prefix_trim.to_le_bytes());
        let crc = crc32c(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let tmp = self.dir.join("meta.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, self.meta_path())?;
        Ok(())
    }

    fn get_meta(&self) -> Result<Option<(u64, PageAddr)>> {
        match fs::read(self.meta_path()) {
            Ok(bytes) => {
                let (_, _, _, epoch, prefix_trim) = Self::decode_meta(&bytes)?;
                Ok(Some((epoch, prefix_trim)))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn scan(&self) -> Result<Vec<ScannedPage>> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.dir)?;
        let mut seg_ids = Vec::new();
        for entry in entries {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix("seg-").and_then(|r| r.strip_suffix(".dat")) {
                if let Ok(id) = rest.parse::<u64>() {
                    seg_ids.push(id);
                }
            }
        }
        seg_ids.sort_unstable();
        for seg in seg_ids {
            let Some(file) = self.segment_readonly(seg)? else { continue };
            for slot in 0..self.pages_per_segment {
                let addr = seg * self.pages_per_segment + slot;
                let off = slot * self.slot_size();
                let mut header = [0u8; HEADER_LEN];
                if file.read_exact_at(&mut header, off).is_err() {
                    continue;
                }
                let Some((state, len, crc, _)) = Self::decode_header(&header, Some(addr)) else {
                    continue;
                };
                let scanned = match state {
                    STATE_DATA => {
                        // Validate the payload; a torn data write is unwritten.
                        let mut payload = vec![0u8; len as usize];
                        if file.read_exact_at(&mut payload, off + HEADER_LEN as u64).is_err()
                            || crc32c(&payload) != crc
                        {
                            continue;
                        }
                        ScannedState::Data
                    }
                    STATE_JUNK => ScannedState::Junk,
                    STATE_TRIMMED => ScannedState::Trimmed,
                    _ => continue,
                };
                out.push(ScannedPage { addr, state: scanned });
            }
        }
        Ok(out)
    }

    fn sync(&mut self) -> Result<()> {
        for file in self.segments.values() {
            file.sync_data()?;
        }
        Ok(())
    }

    fn scrub(&self) -> Result<ScrubReport> {
        let mut report = ScrubReport::default();
        for seg in self.segment_ids()? {
            let Some(file) = self.segment_readonly(seg)? else { continue };
            for slot in 0..self.pages_per_segment {
                let addr = seg * self.pages_per_segment + slot;
                let off = slot * self.slot_size();
                let mut header = [0u8; HEADER_LEN];
                if file.read_exact_at(&mut header, off).is_err() {
                    continue;
                }
                let Some((state, len, crc, _)) = Self::decode_header(&header, Some(addr)) else {
                    // Torn write: header never committed, slot is unwritten.
                    continue;
                };
                if state != STATE_DATA {
                    continue;
                }
                report.pages_checked += 1;
                let mut payload = vec![0u8; len as usize];
                if file.read_exact_at(&mut payload, off + HEADER_LEN as u64).is_err()
                    || crc32c(&payload) != crc
                {
                    // The header committed (written after the payload), so a
                    // failing payload CRC is bit rot, not an in-flight write.
                    report.errors += 1;
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tango-flash-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip_across_reopen() {
        let dir = tmpdir("reopen");
        {
            let mut store = FileStore::open(&dir, 256, 16).unwrap();
            store.put(0, PageKind::Data, b"hello").unwrap();
            store.put(17, PageKind::Data, b"world").unwrap();
            store.put(5, PageKind::Junk, &[]).unwrap();
            store.put_meta(3, 1).unwrap();
            store.sync().unwrap();
        }
        let store = FileStore::open(&dir, 256, 16).unwrap();
        assert_eq!(store.get(0).unwrap(), Some((PageKind::Data, Bytes::from_static(b"hello"))));
        assert_eq!(store.get(17).unwrap(), Some((PageKind::Data, Bytes::from_static(b"world"))));
        assert_eq!(store.get(5).unwrap(), Some((PageKind::Junk, Bytes::new())));
        assert_eq!(store.get(1).unwrap(), None);
        assert_eq!(store.get_meta().unwrap(), Some((3, 1)));
        let scanned = store.scan().unwrap();
        assert_eq!(scanned.len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let dir = tmpdir("geom");
        {
            let mut store = FileStore::open(&dir, 256, 16).unwrap();
            store.put_meta(0, 0).unwrap();
        }
        assert!(matches!(FileStore::open(&dir, 512, 16), Err(FlashError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_page_rejected() {
        let dir = tmpdir("oversize");
        let mut store = FileStore::open(&dir, 8, 16).unwrap();
        assert!(matches!(
            store.put(0, PageKind::Data, &[0u8; 9]),
            Err(FlashError::PageTooLarge { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_payload_detected() {
        let dir = tmpdir("corrupt");
        {
            let mut store = FileStore::open(&dir, 64, 16).unwrap();
            store.put(3, PageKind::Data, b"payload-bytes").unwrap();
            store.sync().unwrap();
        }
        // Flip a payload byte behind the store's back.
        {
            let path = dir.join("seg-0.dat");
            let file = OpenOptions::new().write(true).open(&path).unwrap();
            let slot_size = (HEADER_LEN + 64) as u64;
            file.write_all_at(b"X", 3 * slot_size + HEADER_LEN as u64).unwrap();
        }
        let store = FileStore::open(&dir, 64, 16).unwrap();
        assert!(matches!(store.get(3), Err(FlashError::Corrupt(_))));
        // Scan treats it as a torn write and skips it.
        assert!(store.scan().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trim_marker_persists() {
        let dir = tmpdir("trim");
        {
            let mut store = FileStore::open(&dir, 64, 16).unwrap();
            store.put(2, PageKind::Data, b"x").unwrap();
            store.mark_trimmed(2).unwrap();
        }
        let store = FileStore::open(&dir, 64, 16).unwrap();
        assert_eq!(store.get(2).unwrap(), None);
        let scanned = store.scan().unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].state, ScannedState::Trimmed);
        fs::remove_dir_all(&dir).unwrap();
    }
}
