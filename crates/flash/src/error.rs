use std::fmt;

use crate::PageAddr;

/// Errors produced by the flash unit and its page stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// The page was already written; the address space is write-once.
    AlreadyWritten {
        /// The offending page address.
        addr: PageAddr,
    },
    /// The page (or its whole prefix) has been trimmed.
    Trimmed {
        /// The offending page address.
        addr: PageAddr,
    },
    /// The unit was sealed at a higher epoch than the request's.
    Sealed {
        /// The unit's current epoch.
        current_epoch: u64,
    },
    /// The payload exceeds the unit's fixed page size.
    PageTooLarge {
        /// Bytes offered.
        len: usize,
        /// The unit's page size.
        page_size: usize,
    },
    /// An I/O error from the backing store.
    Io(String),
    /// On-disk state failed validation (bad magic, CRC, or geometry).
    Corrupt(String),
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::AlreadyWritten { addr } => write!(f, "page {addr} already written"),
            FlashError::Trimmed { addr } => write!(f, "page {addr} is trimmed"),
            FlashError::Sealed { current_epoch } => {
                write!(f, "unit sealed at epoch {current_epoch}")
            }
            FlashError::PageTooLarge { len, page_size } => {
                write!(f, "payload of {len} bytes exceeds page size {page_size}")
            }
            FlashError::Io(e) => write!(f, "flash I/O error: {e}"),
            FlashError::Corrupt(e) => write!(f, "corrupt flash state: {e}"),
        }
    }
}

impl std::error::Error for FlashError {}

impl From<std::io::Error> for FlashError {
    fn from(e: std::io::Error) -> Self {
        FlashError::Io(e.to_string())
    }
}
