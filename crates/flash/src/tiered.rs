//! Two-tier page store: hot tail in RAM, cold sealed ranges in segment files.
//!
//! The log's write pattern is strictly append-heavy: the tail is hammered by
//! writes and catch-up reads, while everything behind the most recent
//! checkpoint goes cold and is eventually prefix-trimmed (§5 of the paper's
//! checkpoint-then-trim discipline). `TieredStore` shapes storage around
//! that lifecycle:
//!
//! * **Hot tier** — recently written pages live in a RAM map. They are
//!   volatile until migrated (the write buffer in front of the flash), which
//!   is safe under CORFU's client-driven chain replication: an acked append
//!   is durable across replicas, not across one unit's power cycle, and a
//!   replacement rebuilds from the surviving chain.
//! * **Cold tier** — a background migration pass (or hot-tier overflow)
//!   moves the lowest addresses into the segmented [`FileStore`], oldest
//!   first, so each segment file fills with a contiguous cold range.
//! * **Reclamation** — a prefix trim releases whole segment files whose
//!   entire address range sits below the horizon: one `unlink` instead of a
//!   per-slot trim marker. Only the single segment straddling the horizon
//!   is trimmed slot by slot. This is what makes sequential trims cheap on
//!   flash (§2.2) — the device erases whole blocks.
//!
//! Crash safety: the horizon is persisted in the store metadata *before*
//! segment files are unlinked, so recovery after a crash mid-reclaim ignores
//! the stale slots either way.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::Path;

use bytes::Bytes;

use crate::file::FileStore;
use crate::store::{PageKind, PageStore, ScannedPage, ScannedState, ScrubReport, TierStats};
use crate::{PageAddr, Result};

/// A hot-tier slot: pages are either payloads or junk fills.
#[derive(Debug, Clone)]
enum HotSlot {
    Data(Bytes),
    Junk,
}

/// A tiered [`PageStore`]: hot tail in RAM, cold ranges in a segmented
/// [`FileStore`], whole-segment reclamation below the prefix-trim horizon.
pub struct TieredStore {
    hot: BTreeMap<PageAddr, HotSlot>,
    cold: FileStore,
    /// Cold addresses holding live payloads (data or junk), for occupancy
    /// accounting and straddling-segment trims.
    cold_live: BTreeSet<PageAddr>,
    /// Target hot-tier size; `migrate_cold` drains down to this, and writes
    /// spill eagerly past twice this (a burst guard between compactor runs).
    hot_capacity: usize,
    /// Mirror of the persisted prefix-trim horizon.
    prefix_trim: PageAddr,
    migrations: u64,
    migrated_pages: u64,
    reclaimed_segments: u64,
    reclaimed_pages: u64,
}

impl TieredStore {
    /// Opens (or recovers) a tiered store rooted at `dir`.
    ///
    /// `hot_capacity` is the target number of pages kept in RAM;
    /// `page_size`/`pages_per_segment` fix the cold tier's geometry exactly
    /// as for [`FileStore::open`]. Hot pages from a previous process are
    /// gone (they are the volatile tail by design); everything previously
    /// migrated recovers from the segment files.
    pub fn open(
        dir: impl AsRef<Path>,
        page_size: usize,
        pages_per_segment: u64,
        hot_capacity: usize,
    ) -> Result<Self> {
        let cold = FileStore::open(dir, page_size, pages_per_segment)?;
        let prefix_trim = cold.get_meta()?.map(|(_, h)| h).unwrap_or(0);
        let mut cold_live = BTreeSet::new();
        for page in cold.scan()? {
            if page.addr >= prefix_trim && !matches!(page.state, ScannedState::Trimmed) {
                cold_live.insert(page.addr);
            }
        }
        Ok(Self {
            hot: BTreeMap::new(),
            cold,
            cold_live,
            hot_capacity,
            prefix_trim,
            migrations: 0,
            migrated_pages: 0,
            reclaimed_segments: 0,
            reclaimed_pages: 0,
        })
    }

    /// The target hot-tier size in pages.
    pub fn hot_capacity(&self) -> usize {
        self.hot_capacity
    }

    /// Moves the lowest-addressed hot pages into the cold tier until at most
    /// `target` pages remain hot. Returns how many pages moved.
    fn drain_hot_to(&mut self, target: usize) -> Result<u64> {
        let mut moved = 0u64;
        while self.hot.len() > target {
            let (&addr, _) = self.hot.iter().next().expect("hot tier is non-empty");
            let slot = self.hot.remove(&addr).expect("just observed");
            match &slot {
                HotSlot::Data(bytes) => self.cold.put(addr, PageKind::Data, bytes)?,
                HotSlot::Junk => self.cold.put(addr, PageKind::Junk, &[])?,
            }
            self.cold_live.insert(addr);
            moved += 1;
        }
        if moved > 0 {
            self.migrations += 1;
            self.migrated_pages += moved;
        }
        Ok(moved)
    }
}

impl PageStore for TieredStore {
    fn put(&mut self, addr: PageAddr, kind: PageKind, data: &[u8]) -> Result<()> {
        let slot = match kind {
            PageKind::Data => HotSlot::Data(Bytes::copy_from_slice(data)),
            PageKind::Junk => HotSlot::Junk,
        };
        self.hot.insert(addr, slot);
        // Burst guard: if the compactor falls behind, spill eagerly rather
        // than letting the hot tier grow without bound.
        if self.hot.len() > self.hot_capacity.saturating_mul(2) {
            self.drain_hot_to(self.hot_capacity)?;
        }
        Ok(())
    }

    fn get(&self, addr: PageAddr) -> Result<Option<(PageKind, Bytes)>> {
        match self.hot.get(&addr) {
            Some(HotSlot::Data(b)) => Ok(Some((PageKind::Data, b.clone()))),
            Some(HotSlot::Junk) => Ok(Some((PageKind::Junk, Bytes::new()))),
            None => self.cold.get(addr),
        }
    }

    fn mark_trimmed(&mut self, addr: PageAddr) -> Result<()> {
        // Random trims are durable regardless of tier: drop any hot copy and
        // persist the marker in the cold slot.
        self.hot.remove(&addr);
        self.cold_live.remove(&addr);
        self.cold.mark_trimmed(addr)
    }

    fn put_meta(&mut self, epoch: u64, prefix_trim: PageAddr) -> Result<()> {
        self.prefix_trim = self.prefix_trim.max(prefix_trim);
        self.cold.put_meta(epoch, prefix_trim)
    }

    fn get_meta(&self) -> Result<Option<(u64, PageAddr)>> {
        self.cold.get_meta()
    }

    fn scan(&self) -> Result<Vec<ScannedPage>> {
        let mut out = self.cold.scan()?;
        for (&addr, slot) in &self.hot {
            out.push(ScannedPage {
                addr,
                state: match slot {
                    HotSlot::Data(_) => ScannedState::Data,
                    HotSlot::Junk => ScannedState::Junk,
                },
            });
        }
        out.sort_by_key(|p| p.addr);
        Ok(out)
    }

    fn sync(&mut self) -> Result<()> {
        // A sync is the durability point: flush the volatile tail down to
        // the cold tier, then flush the cold tier to disk.
        self.drain_hot_to(0)?;
        self.cold.sync()
    }

    fn trim_prefix(&mut self, epoch: u64, horizon: PageAddr, _addrs: &[PageAddr]) -> Result<()> {
        // Hot pages below the horizon just evaporate.
        let keep = self.hot.split_off(&horizon);
        let hot_dropped = self.hot.len() as u64;
        self.hot = keep;

        // Cold pages in the one segment straddling the horizon need per-slot
        // markers; everything in fully-covered segments is reclaimed below
        // by deleting the files outright.
        let pps = self.cold.pages_per_segment();
        let straddle_start = (horizon / pps) * pps;
        let straddling: Vec<PageAddr> =
            self.cold_live.range(straddle_start..horizon).copied().collect();
        for addr in straddling {
            self.cold.mark_trimmed(addr)?;
        }

        let keep = self.cold_live.split_off(&horizon);
        let cold_dropped = self.cold_live.len() as u64;
        self.cold_live = keep;

        // Persist the horizon before unlinking segments: recovery ignores
        // addresses below it whether or not the unlinks happened.
        self.prefix_trim = self.prefix_trim.max(horizon);
        self.cold.put_meta(epoch, horizon)?;
        let removed = self.cold.remove_segments_below(horizon)?;
        self.reclaimed_segments += removed.len() as u64;
        self.reclaimed_pages += hot_dropped + cold_dropped;
        Ok(())
    }

    fn migrate_cold(&mut self) -> Result<u64> {
        let target = self.hot_capacity;
        self.drain_hot_to(target)
    }

    fn scrub(&self) -> Result<ScrubReport> {
        // Only the cold tier carries checksums; the hot tail is RAM.
        self.cold.scrub()
    }

    fn tier_stats(&self) -> TierStats {
        TierStats {
            hot_pages: self.hot.len() as u64,
            cold_pages: self.cold_live.len() as u64,
            cold_segments: self.cold.segment_ids().map(|s| s.len() as u64).unwrap_or(0),
            migrations: self.migrations,
            migrated_pages: self.migrated_pages,
            reclaimed_segments: self.reclaimed_segments,
            reclaimed_pages: self.reclaimed_pages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tango-tiered-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn hot_tail_serves_reads_before_migration() {
        let dir = tmpdir("hot");
        let mut store = TieredStore::open(&dir, 64, 8, 16).unwrap();
        store.put(0, PageKind::Data, b"zero").unwrap();
        store.put(1, PageKind::Junk, &[]).unwrap();
        assert_eq!(store.get(0).unwrap(), Some((PageKind::Data, Bytes::from_static(b"zero"))));
        assert_eq!(store.get(1).unwrap(), Some((PageKind::Junk, Bytes::new())));
        let stats = store.tier_stats();
        assert_eq!((stats.hot_pages, stats.cold_pages), (2, 0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migration_moves_oldest_pages_cold_and_survives_reopen() {
        let dir = tmpdir("migrate");
        {
            let mut store = TieredStore::open(&dir, 64, 8, 4).unwrap();
            for addr in 0..10u64 {
                store.put(addr, PageKind::Data, format!("p{addr}").as_bytes()).unwrap();
            }
            // The burst guard already spilled 5 pages when the hot tier hit
            // twice its capacity; the explicit pass drains the remainder.
            assert_eq!(store.migrate_cold().unwrap(), 1);
            let stats = store.tier_stats();
            assert_eq!((stats.hot_pages, stats.cold_pages), (4, 6));
            assert_eq!(stats.migrated_pages, 6);
            assert_eq!(stats.migrations, 2);
            // Reads hit whichever tier holds the page.
            assert_eq!(store.get(0).unwrap(), Some((PageKind::Data, Bytes::from_static(b"p0"))));
            assert_eq!(store.get(9).unwrap(), Some((PageKind::Data, Bytes::from_static(b"p9"))));
            store.sync().unwrap(); // drains the tail for the reopen below
        }
        let store = TieredStore::open(&dir, 64, 8, 4).unwrap();
        assert_eq!(store.get(9).unwrap(), Some((PageKind::Data, Bytes::from_static(b"p9"))));
        assert_eq!(store.tier_stats().cold_pages, 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overflow_spills_without_explicit_migration() {
        let dir = tmpdir("spill");
        let mut store = TieredStore::open(&dir, 64, 8, 2).unwrap();
        for addr in 0..5u64 {
            store.put(addr, PageKind::Data, b"x").unwrap();
        }
        // Capacity 2, burst guard at 4: the fifth put drains down to 2 hot.
        let stats = store.tier_stats();
        assert_eq!(stats.hot_pages, 2);
        assert_eq!(stats.cold_pages, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prefix_trim_reclaims_whole_segments() {
        let dir = tmpdir("reclaim");
        let mut store = TieredStore::open(&dir, 64, 4, 0).unwrap();
        for addr in 0..10u64 {
            store.put(addr, PageKind::Data, b"x").unwrap();
        }
        store.migrate_cold().unwrap(); // hot_capacity 0: everything cold
        assert_eq!(store.tier_stats().cold_segments, 3);

        // Horizon 9 covers segments 0 and 1 entirely; segment 2 straddles.
        let addrs: Vec<PageAddr> = (0..9).collect();
        store.trim_prefix(1, 9, &addrs).unwrap();
        let stats = store.tier_stats();
        assert_eq!(stats.reclaimed_segments, 2);
        assert_eq!(stats.reclaimed_pages, 9);
        assert_eq!(stats.cold_pages, 1);
        assert!(!dir.join("seg-0.dat").exists());
        assert!(!dir.join("seg-1.dat").exists());
        assert!(dir.join("seg-2.dat").exists());
        // The straddling slot got a durable marker, the survivor reads back.
        assert_eq!(store.get(8).unwrap(), None);
        assert_eq!(store.get(9).unwrap(), Some((PageKind::Data, Bytes::from_static(b"x"))));
        assert_eq!(store.get_meta().unwrap(), Some((1, 9)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reclaim_drops_hot_pages_below_horizon() {
        let dir = tmpdir("hot-reclaim");
        let mut store = TieredStore::open(&dir, 64, 4, 16).unwrap();
        for addr in 0..6u64 {
            store.put(addr, PageKind::Data, b"x").unwrap();
        }
        let addrs: Vec<PageAddr> = (0..4).collect();
        store.trim_prefix(0, 4, &addrs).unwrap();
        let stats = store.tier_stats();
        assert_eq!(stats.hot_pages, 2);
        assert_eq!(stats.reclaimed_pages, 4);
        assert_eq!(store.get(1).unwrap(), None);
        assert_eq!(store.get(5).unwrap(), Some((PageKind::Data, Bytes::from_static(b"x"))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_checks_cold_payloads() {
        let dir = tmpdir("scrub");
        let mut store = TieredStore::open(&dir, 64, 8, 0).unwrap();
        store.put(0, PageKind::Data, b"checked").unwrap();
        store.put(1, PageKind::Data, b"also").unwrap();
        store.migrate_cold().unwrap();
        let report = store.scrub().unwrap();
        assert_eq!(report.pages_checked, 2);
        assert_eq!(report.errors, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_after_crash_mid_reclaim_ignores_stale_slots() {
        let dir = tmpdir("crash");
        {
            let mut store = TieredStore::open(&dir, 64, 4, 0).unwrap();
            for addr in 0..8u64 {
                store.put(addr, PageKind::Data, b"x").unwrap();
            }
            store.migrate_cold().unwrap();
            // Simulate the crash window: horizon persisted, unlinks lost.
            store.put_meta(0, 8).unwrap();
        }
        // Segment files still exist, but recovery honors the horizon.
        assert!(dir.join("seg-0.dat").exists());
        let store = TieredStore::open(&dir, 64, 4, 0).unwrap();
        assert_eq!(store.tier_stats().cold_pages, 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
