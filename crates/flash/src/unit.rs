use std::collections::BTreeMap;

use crate::store::{PageKind, PageRead, PageStore, ScannedState, ScrubReport, TierStats};
use crate::{FlashError, FlashMetrics, PageAddr, Result};

/// Wear and usage accounting for a flash unit.
///
/// The paper notes (§2.2) that "the flash lifetime of a CORFU node depends on
/// the workload; sequential trims result in substantially less wear on the
/// flash than random trims" — so the unit distinguishes the two.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WearStats {
    /// Data pages written.
    pub data_writes: u64,
    /// Junk fills written.
    pub junk_writes: u64,
    /// Bytes of payload written.
    pub bytes_written: u64,
    /// Pages read.
    pub reads: u64,
    /// Random (per-address) trims.
    pub random_trims: u64,
    /// Pages reclaimed by sequential prefix trims.
    pub prefix_trimmed_pages: u64,
    /// Writes rejected because the address was already consumed.
    pub rejected_writes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Data,
    Junk,
    Trimmed,
}

/// A write-once, 64-bit page address space: the storage device under a CORFU
/// storage server (§2.2).
///
/// Invariants:
///
/// * Every address accepts at most one write (data or junk) over its
///   lifetime, even across trims: a trimmed address stays consumed. This is
///   what makes client-driven chain replication safe.
/// * `seal` is monotone: the epoch only increases.
pub struct FlashUnit {
    store: Box<dyn PageStore>,
    /// Live index: address -> state. Addresses below `prefix_trim` are
    /// implicitly trimmed and absent.
    index: BTreeMap<PageAddr, SlotState>,
    /// All addresses strictly below this are trimmed.
    prefix_trim: PageAddr,
    /// The highest consumed address + 1 (never decreases, even on trim).
    local_tail: PageAddr,
    epoch: u64,
    page_size: usize,
    /// Live (data or junk, not trimmed) pages currently occupying the unit.
    live_pages: u64,
    stats: WearStats,
    metrics: FlashMetrics,
}

impl FlashUnit {
    /// Creates a unit over a fresh or previously used store, recovering the
    /// index, epoch, and trim horizon by scanning.
    pub fn open(store: Box<dyn PageStore>, page_size: usize) -> Result<Self> {
        let (epoch, prefix_trim) = store.get_meta()?.unwrap_or((0, 0));
        let mut index = BTreeMap::new();
        let mut local_tail = prefix_trim;
        for page in store.scan()? {
            let state = match page.state {
                ScannedState::Data => SlotState::Data,
                ScannedState::Junk => SlotState::Junk,
                ScannedState::Trimmed => SlotState::Trimmed,
            };
            local_tail = local_tail.max(page.addr + 1);
            if page.addr >= prefix_trim {
                index.insert(page.addr, state);
            }
        }
        let live_pages = index.values().filter(|s| !matches!(s, SlotState::Trimmed)).count() as u64;
        Ok(Self {
            store,
            index,
            prefix_trim,
            local_tail,
            epoch,
            page_size,
            live_pages,
            stats: WearStats::default(),
            metrics: FlashMetrics::default(),
        })
    }

    /// Creates an in-memory unit, for tests and the in-process cluster.
    pub fn in_memory(page_size: usize) -> Self {
        Self::open(Box::new(crate::MemStore::new()), page_size)
            .expect("MemStore::open is infallible")
    }

    /// The fixed page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The unit's current seal epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The highest consumed address + 1. This is the "local tail" used by
    /// the slow check and by sequencer recovery.
    pub fn local_tail(&self) -> PageAddr {
        self.local_tail
    }

    /// The prefix-trim horizon: every address strictly below it is trimmed.
    /// A rebuild copying this unit onto a replacement must install the same
    /// horizon so the replacement rejects writes below it too.
    pub fn prefix_trim(&self) -> PageAddr {
        self.prefix_trim
    }

    /// Usage counters.
    pub fn stats(&self) -> WearStats {
        self.stats
    }

    /// Live (data or junk, not yet trimmed) pages currently occupying the
    /// unit: the occupancy number the compactor exports and the churn bench
    /// proves bounded.
    pub fn live_pages(&self) -> u64 {
        self.live_pages
    }

    /// Hot/cold occupancy and migration accounting from the backing store
    /// (all zeros over single-tier stores).
    pub fn tier_stats(&self) -> TierStats {
        self.store.tier_stats()
    }

    /// Asks the backing store to migrate cold pages toward stable storage,
    /// returning how many pages moved.
    pub fn migrate_cold(&mut self) -> Result<u64> {
        self.store.migrate_cold()
    }

    /// Verifies stored checksums in the backing store.
    pub fn scrub(&self) -> Result<ScrubReport> {
        self.store.scrub()
    }

    /// Advances the prefix-trim horizon over any contiguous run of
    /// individually trimmed slots sitting just above it, converting
    /// accumulated random trims into a sequential trim (the cheap kind).
    /// Returns the horizon after the pass.
    pub fn advance_trim_horizon(&mut self) -> Result<PageAddr> {
        let mut horizon = self.prefix_trim;
        while matches!(self.index.get(&horizon), Some(SlotState::Trimmed)) {
            horizon += 1;
        }
        if horizon > self.prefix_trim {
            self.trim_prefix(horizon)?;
        }
        Ok(self.prefix_trim)
    }

    /// Installs service-time instruments (`flash.*`). Until this is
    /// called every histogram handle is a disabled no-op.
    pub fn set_metrics(&mut self, metrics: FlashMetrics) {
        self.metrics = metrics;
    }

    fn check_writable(&mut self, addr: PageAddr) -> Result<()> {
        if addr < self.prefix_trim {
            return Err(FlashError::Trimmed { addr });
        }
        if self.index.contains_key(&addr) {
            self.stats.rejected_writes += 1;
            return Err(FlashError::AlreadyWritten { addr });
        }
        Ok(())
    }

    /// Writes a data page. Fails with [`FlashError::AlreadyWritten`] if the
    /// address was ever consumed, or [`FlashError::Trimmed`] below the trim
    /// horizon.
    pub fn write(&mut self, addr: PageAddr, data: &[u8]) -> Result<()> {
        if data.len() > self.page_size {
            return Err(FlashError::PageTooLarge { len: data.len(), page_size: self.page_size });
        }
        self.check_writable(addr)?;
        // The timer starts after arbitration so rejected writes (a
        // protocol outcome, not device work) never pollute service time.
        let timer = self.metrics.write_service_ns.start_sampled(&self.metrics.sampler);
        if let Err(e) = self.store.put(addr, PageKind::Data, data) {
            timer.discard();
            return Err(e);
        }
        self.index.insert(addr, SlotState::Data);
        self.local_tail = self.local_tail.max(addr + 1);
        self.live_pages += 1;
        self.stats.data_writes += 1;
        self.stats.bytes_written += data.len() as u64;
        timer.stop();
        Ok(())
    }

    /// Fills a page with junk (the hole-patching primitive, §3.2). Subject to
    /// the same write-once rules as [`FlashUnit::write`].
    pub fn fill(&mut self, addr: PageAddr) -> Result<()> {
        self.check_writable(addr)?;
        let timer = self.metrics.fill_service_ns.start_sampled(&self.metrics.sampler);
        if let Err(e) = self.store.put(addr, PageKind::Junk, &[]) {
            timer.discard();
            return Err(e);
        }
        self.index.insert(addr, SlotState::Junk);
        self.local_tail = self.local_tail.max(addr + 1);
        self.live_pages += 1;
        self.stats.junk_writes += 1;
        timer.stop();
        Ok(())
    }

    /// Reads the page at `addr`.
    pub fn read(&mut self, addr: PageAddr) -> Result<PageRead> {
        self.stats.reads += 1;
        let timer = self.metrics.read_service_ns.start_sampled(&self.metrics.sampler);
        // Every non-error outcome counts as service time: the device does
        // index work whether or not the page holds data.
        let out = self.read_slot(addr);
        match out {
            Ok(read) => {
                timer.stop();
                Ok(read)
            }
            Err(e) => {
                timer.discard();
                Err(e)
            }
        }
    }

    /// Reads a batch of pages in one device operation. Wear accounting still
    /// charges one read per page, but the sampled service timer covers the
    /// whole batch — that asymmetry is the point of batching.
    pub fn read_many(&mut self, addrs: &[PageAddr]) -> Result<Vec<PageRead>> {
        self.stats.reads += addrs.len() as u64;
        let timer = self.metrics.read_service_ns.start_sampled(&self.metrics.sampler);
        let mut out = Vec::with_capacity(addrs.len());
        for &addr in addrs {
            match self.read_slot(addr) {
                Ok(read) => out.push(read),
                Err(e) => {
                    timer.discard();
                    return Err(e);
                }
            }
        }
        timer.stop();
        Ok(out)
    }

    fn read_slot(&mut self, addr: PageAddr) -> Result<PageRead> {
        if addr < self.prefix_trim {
            return Ok(PageRead::Trimmed);
        }
        match self.index.get(&addr) {
            None => Ok(PageRead::Unwritten),
            Some(SlotState::Trimmed) => Ok(PageRead::Trimmed),
            Some(SlotState::Junk) => Ok(PageRead::Junk),
            Some(SlotState::Data) => match self.store.get(addr) {
                Ok(Some((PageKind::Data, bytes))) => Ok(PageRead::Data(bytes)),
                Err(e) => Err(e),
                // The index said data was here; the store losing it is
                // corruption, not a hole.
                Ok(_) => Err(FlashError::Corrupt(format!("indexed data page {addr} missing"))),
            },
        }
    }

    /// Trims a single address, releasing its payload. The address remains
    /// consumed: it will never accept a write again.
    pub fn trim(&mut self, addr: PageAddr) -> Result<()> {
        if addr < self.prefix_trim {
            return Ok(());
        }
        let timer = self.metrics.trim_service_ns.start_sampled(&self.metrics.sampler);
        if let Err(e) = self.store.mark_trimmed(addr) {
            timer.discard();
            return Err(e);
        }
        if !matches!(self.index.insert(addr, SlotState::Trimmed), Some(SlotState::Trimmed) | None) {
            self.live_pages -= 1;
        }
        self.local_tail = self.local_tail.max(addr + 1);
        self.stats.random_trims += 1;
        timer.stop();
        Ok(())
    }

    /// Trims every address strictly below `horizon` (sequential trim, the
    /// cheap kind). Idempotent; a lower horizon than the current one is a
    /// no-op.
    pub fn trim_prefix(&mut self, horizon: PageAddr) -> Result<()> {
        if horizon <= self.prefix_trim {
            return Ok(());
        }
        let timer = self.metrics.trim_service_ns.start_sampled(&self.metrics.sampler);
        let removed: Vec<PageAddr> = self.index.range(..horizon).map(|(&addr, _)| addr).collect();
        // One bulk call so tiered stores can reclaim whole segments instead
        // of marking every slot.
        if let Err(e) = self.store.trim_prefix(self.epoch, horizon, &removed) {
            timer.discard();
            return Err(e);
        }
        self.stats.prefix_trimmed_pages += removed.len() as u64;
        for addr in removed {
            if !matches!(self.index.remove(&addr), Some(SlotState::Trimmed) | None) {
                self.live_pages -= 1;
            }
        }
        self.prefix_trim = horizon;
        self.local_tail = self.local_tail.max(horizon);
        timer.stop();
        Ok(())
    }

    /// Seals the unit at `epoch`, returning the local tail. Requests carrying
    /// an older epoch must be rejected by the storage server above. Sealing
    /// at an epoch not greater than the current one fails.
    pub fn seal(&mut self, epoch: u64) -> Result<PageAddr> {
        if epoch <= self.epoch {
            return Err(FlashError::Sealed { current_epoch: self.epoch });
        }
        self.epoch = epoch;
        self.store.put_meta(self.epoch, self.prefix_trim)?;
        Ok(self.local_tail)
    }

    /// Flushes the backing store.
    pub fn sync(&mut self) -> Result<()> {
        self.store.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    fn unit() -> FlashUnit {
        FlashUnit::in_memory(4096)
    }

    #[test]
    fn write_once_enforced() {
        let mut u = unit();
        u.write(7, b"abc").unwrap();
        assert_eq!(u.write(7, b"xyz"), Err(FlashError::AlreadyWritten { addr: 7 }));
        assert_eq!(u.fill(7), Err(FlashError::AlreadyWritten { addr: 7 }));
        assert_eq!(u.read(7).unwrap(), PageRead::Data(bytes::Bytes::from_static(b"abc")));
    }

    #[test]
    fn fill_then_write_rejected() {
        let mut u = unit();
        u.fill(3).unwrap();
        assert_eq!(u.write(3, b"late"), Err(FlashError::AlreadyWritten { addr: 3 }));
        assert_eq!(u.read(3).unwrap(), PageRead::Junk);
    }

    #[test]
    fn unwritten_reads_and_tail() {
        let mut u = unit();
        assert_eq!(u.read(0).unwrap(), PageRead::Unwritten);
        assert_eq!(u.local_tail(), 0);
        u.write(5, b"sparse").unwrap();
        assert_eq!(u.local_tail(), 6);
        assert_eq!(u.read(2).unwrap(), PageRead::Unwritten);
    }

    #[test]
    fn read_many_mirrors_single_reads() {
        let mut u = unit();
        u.write(1, b"one").unwrap();
        u.fill(2).unwrap();
        u.write(4, b"four").unwrap();
        u.trim(4).unwrap();
        let before = u.stats().reads;
        let out = u.read_many(&[0, 1, 2, 4]).unwrap();
        assert_eq!(
            out,
            vec![
                PageRead::Unwritten,
                PageRead::Data(bytes::Bytes::from_static(b"one")),
                PageRead::Junk,
                PageRead::Trimmed,
            ]
        );
        // Wear accounting charges one read per page even in a batch.
        assert_eq!(u.stats().reads, before + 4);
        assert_eq!(u.read_many(&[]).unwrap(), Vec::new());
    }

    #[test]
    fn trim_keeps_address_consumed() {
        let mut u = unit();
        u.write(1, b"v").unwrap();
        u.trim(1).unwrap();
        assert_eq!(u.read(1).unwrap(), PageRead::Trimmed);
        assert_eq!(u.write(1, b"again"), Err(FlashError::AlreadyWritten { addr: 1 }));
        assert_eq!(u.stats().random_trims, 1);
    }

    #[test]
    fn prefix_trim_reclaims_and_rejects() {
        let mut u = unit();
        for addr in 0..10 {
            u.write(addr, b"x").unwrap();
        }
        u.trim_prefix(5).unwrap();
        for addr in 0..5 {
            assert_eq!(u.read(addr).unwrap(), PageRead::Trimmed);
            assert_eq!(u.write(addr, b"y"), Err(FlashError::Trimmed { addr }));
        }
        assert_eq!(u.read(5).unwrap(), PageRead::Data(bytes::Bytes::from_static(b"x")));
        assert_eq!(u.stats().prefix_trimmed_pages, 5);
        // Lower horizon is a no-op.
        u.trim_prefix(2).unwrap();
        assert_eq!(u.local_tail(), 10);
    }

    #[test]
    fn occupancy_counts_live_pages() {
        let mut u = unit();
        for addr in 0..6 {
            u.write(addr, b"x").unwrap();
        }
        u.fill(6).unwrap();
        assert_eq!(u.live_pages(), 7);
        u.trim(3).unwrap();
        assert_eq!(u.live_pages(), 6);
        // Trimming a trimmed or unwritten address changes nothing.
        u.trim(3).unwrap();
        u.trim(100).unwrap();
        assert_eq!(u.live_pages(), 6);
        u.trim_prefix(5).unwrap();
        // 0,1,2,4 were live below the horizon; 3 was already trimmed.
        assert_eq!(u.live_pages(), 2);
    }

    #[test]
    fn advance_trim_horizon_converts_contiguous_random_trims() {
        let mut u = unit();
        for addr in 0..6 {
            u.write(addr, b"x").unwrap();
        }
        u.trim(0).unwrap();
        u.trim(1).unwrap();
        u.trim(4).unwrap(); // not contiguous with the prefix
        assert_eq!(u.advance_trim_horizon().unwrap(), 2);
        assert_eq!(u.prefix_trim(), 2);
        // 2 and 3 are still live, so the horizon cannot pass them.
        assert_eq!(u.advance_trim_horizon().unwrap(), 2);
        u.trim(2).unwrap();
        u.trim(3).unwrap();
        // Now 2..=4 are all marked: the horizon jumps over the whole run.
        assert_eq!(u.advance_trim_horizon().unwrap(), 5);
        assert_eq!(u.read(4).unwrap(), PageRead::Trimmed);
        assert_eq!(u.read(5).unwrap(), PageRead::Data(bytes::Bytes::from_static(b"x")));
    }

    #[test]
    fn seal_is_monotone() {
        let mut u = unit();
        u.write(0, b"a").unwrap();
        assert_eq!(u.seal(1).unwrap(), 1);
        assert_eq!(u.seal(1), Err(FlashError::Sealed { current_epoch: 1 }));
        assert_eq!(u.seal(5).unwrap(), 1);
        assert_eq!(u.epoch(), 5);
    }

    #[test]
    fn recovery_from_store_scan() {
        let mut store = MemStore::new();
        store.put(0, PageKind::Data, b"zero").unwrap();
        store.put(4, PageKind::Junk, &[]).unwrap();
        store.mark_trimmed(2).unwrap();
        store.put_meta(9, 0).unwrap();
        let mut u = FlashUnit::open(Box::new(store), 4096).unwrap();
        assert_eq!(u.epoch(), 9);
        assert_eq!(u.local_tail(), 5);
        assert_eq!(u.read(0).unwrap(), PageRead::Data(bytes::Bytes::from_static(b"zero")));
        assert_eq!(u.read(4).unwrap(), PageRead::Junk);
        assert_eq!(u.read(2).unwrap(), PageRead::Trimmed);
        assert_eq!(u.write(2, b"no"), Err(FlashError::AlreadyWritten { addr: 2 }));
    }

    #[test]
    fn service_time_histograms_record_per_op() {
        use tango_metrics::{Registry, Sampler};
        let registry = Registry::new();
        let mut metrics = crate::FlashMetrics::from_registry(&registry);
        metrics.sampler = Sampler::one_in(1); // every op, for determinism
        let mut u = unit();
        u.set_metrics(metrics);

        u.write(0, b"a").unwrap();
        u.read(0).unwrap();
        u.fill(1).unwrap();
        u.trim(0).unwrap();
        u.write(2, b"b").unwrap();
        u.write(3, b"c").unwrap();
        u.trim_prefix(3).unwrap();
        // Rejected work is arbitration, not service time.
        assert!(u.write(3, b"again").is_err());

        let snap = registry.snapshot();
        let count = |name: &str| snap.histogram(name).unwrap().count();
        assert_eq!(count("flash.write.service_ns"), 3);
        assert_eq!(count("flash.read.service_ns"), 1);
        assert_eq!(count("flash.fill.service_ns"), 1);
        // One random trim + one prefix trim.
        assert_eq!(count("flash.trim.service_ns"), 2);
    }

    #[test]
    fn page_size_enforced() {
        let mut u = FlashUnit::in_memory(8);
        assert!(matches!(u.write(0, &[0u8; 9]), Err(FlashError::PageTooLarge { .. })));
        u.write(0, &[0u8; 8]).unwrap();
    }
}
