use std::collections::BTreeMap;

use bytes::Bytes;

use crate::store::{PageKind, PageStore, ScannedPage, ScannedState};
use crate::{PageAddr, Result};

/// An in-memory [`PageStore`], used by tests and the in-process cluster.
#[derive(Debug, Default)]
pub struct MemStore {
    slots: BTreeMap<PageAddr, Slot>,
    meta: Option<(u64, PageAddr)>,
}

#[derive(Debug, Clone)]
enum Slot {
    Data(Bytes),
    Junk,
    Trimmed,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the number of live (non-trimmed) slots, for tests.
    pub fn live_pages(&self) -> usize {
        self.slots.values().filter(|s| !matches!(s, Slot::Trimmed)).count()
    }
}

impl PageStore for MemStore {
    fn put(&mut self, addr: PageAddr, kind: PageKind, data: &[u8]) -> Result<()> {
        let slot = match kind {
            PageKind::Data => Slot::Data(Bytes::copy_from_slice(data)),
            PageKind::Junk => Slot::Junk,
        };
        self.slots.insert(addr, slot);
        Ok(())
    }

    fn get(&self, addr: PageAddr) -> Result<Option<(PageKind, Bytes)>> {
        Ok(match self.slots.get(&addr) {
            Some(Slot::Data(b)) => Some((PageKind::Data, b.clone())),
            Some(Slot::Junk) => Some((PageKind::Junk, Bytes::new())),
            Some(Slot::Trimmed) | None => None,
        })
    }

    fn mark_trimmed(&mut self, addr: PageAddr) -> Result<()> {
        self.slots.insert(addr, Slot::Trimmed);
        Ok(())
    }

    fn put_meta(&mut self, epoch: u64, prefix_trim: PageAddr) -> Result<()> {
        self.meta = Some((epoch, prefix_trim));
        Ok(())
    }

    fn get_meta(&self) -> Result<Option<(u64, PageAddr)>> {
        Ok(self.meta)
    }

    fn scan(&self) -> Result<Vec<ScannedPage>> {
        Ok(self
            .slots
            .iter()
            .map(|(&addr, slot)| ScannedPage {
                addr,
                state: match slot {
                    Slot::Data(_) => ScannedState::Data,
                    Slot::Junk => ScannedState::Junk,
                    Slot::Trimmed => ScannedState::Trimmed,
                },
            })
            .collect())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}
