#![warn(missing_docs)]
//! Write-once flash storage for CORFU storage nodes.
//!
//! The paper (§2.2) describes a CORFU storage node as "an SSD with a custom
//! interface (i.e., a write-once, 64-bit address space instead of a
//! conventional LBA, where space is freed by explicit trims rather than
//! overwrites)". This crate implements that device:
//!
//! * [`FlashUnit`] — the write-once 64-bit page address space with
//!   `write`/`read`/`trim`/`trim_prefix`/`seal` and wear accounting. Pages can
//!   hold data or *junk* (the fill value used to patch holes left by crashed
//!   clients).
//! * [`PageStore`] — the persistence backend trait, with three
//!   implementations: [`MemStore`] (RAM, used by tests and the in-process
//!   cluster), [`FileStore`] (segmented slot files with CRC-checked headers
//!   and crash recovery by scanning), and [`TieredStore`] (hot tail in RAM,
//!   cold sealed ranges migrated into segment files, with whole-segment
//!   reclamation below the prefix-trim horizon).
//!
//! We do not have the paper's Intel X25-V SSDs; `FileStore` over a local
//! filesystem is the substitution. It preserves the semantics that matter to
//! CORFU — write-once pages, explicit trim, sealing, persistence across
//! restarts — while the performance characteristics of the original cluster
//! are modeled separately in `simcluster` (see DESIGN.md).

mod error;
mod file;
mod mem;
mod metrics;
mod store;
mod tiered;
mod unit;

pub use error::FlashError;
pub use file::FileStore;
pub use mem::MemStore;
pub use metrics::FlashMetrics;
pub use store::{PageKind, PageRead, PageStore, ScannedPage, ScrubReport, TierStats};
pub use tiered::TieredStore;
pub use unit::{FlashUnit, WearStats};

/// A page address in the unit's 64-bit write-once address space.
pub type PageAddr = u64;

/// Convenience alias for flash results.
pub type Result<T> = std::result::Result<T, FlashError>;
