use bytes::Bytes;

use crate::{PageAddr, Result};

/// What a written page holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// An application payload.
    Data,
    /// The junk fill value used to patch holes (§3.2 of the paper); junk
    /// pages carry no payload.
    Junk,
}

/// The outcome of reading a page address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageRead {
    /// The page holds application data.
    Data(Bytes),
    /// The page was filled with junk.
    Junk,
    /// The page has never been written.
    Unwritten,
    /// The page has been trimmed (garbage collected).
    Trimmed,
}

impl PageRead {
    /// Returns true if the address has been consumed (written, filled, or
    /// trimmed) and can never accept a write.
    pub fn is_consumed(&self) -> bool {
        !matches!(self, PageRead::Unwritten)
    }
}

/// A page discovered while scanning a store during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedPage {
    /// The page address.
    pub addr: PageAddr,
    /// Whether the slot holds data, junk, or a trim marker.
    pub state: ScannedState,
}

/// The state of a scanned slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScannedState {
    /// Slot holds a valid data payload.
    Data,
    /// Slot holds a junk fill.
    Junk,
    /// Slot was explicitly trimmed.
    Trimmed,
}

/// Occupancy and migration accounting for tiered stores.
///
/// Flat (all zeros) for single-tier stores; [`crate::TieredStore`] reports
/// its hot/cold split, migration traffic, and whole-segment reclamation here.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TierStats {
    /// Live pages resident in the hot (RAM) tier.
    pub hot_pages: u64,
    /// Live pages resident in the cold (segmented file) tier.
    pub cold_pages: u64,
    /// Segment files currently backing the cold tier.
    pub cold_segments: u64,
    /// Migration passes that moved at least one page hot → cold.
    pub migrations: u64,
    /// Total pages migrated hot → cold.
    pub migrated_pages: u64,
    /// Whole segment files reclaimed below the prefix-trim horizon.
    pub reclaimed_segments: u64,
    /// Live pages released by prefix-trim reclamation.
    pub reclaimed_pages: u64,
}

/// The outcome of a CRC scrub pass over a store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// Slots whose checksums were verified.
    pub pages_checked: u64,
    /// Slots whose header validated but whose payload failed its CRC —
    /// bit rot, not a torn write (headers are written after payloads).
    pub errors: u64,
}

/// Persistence backend for a [`crate::FlashUnit`].
///
/// The store is a dumb slot device: write-once enforcement, sealing, and trim
/// bookkeeping live in the unit. Implementations must persist page payloads,
/// trim markers, and the unit metadata (epoch, prefix-trim horizon).
pub trait PageStore: Send {
    /// Persists a page payload (data or junk) at `addr`.
    ///
    /// The unit guarantees it calls this at most once per live address, so
    /// implementations may overwrite the slot unconditionally.
    fn put(&mut self, addr: PageAddr, kind: PageKind, data: &[u8]) -> Result<()>;

    /// Reads the slot at `addr`, or `None` if nothing was ever persisted.
    fn get(&self, addr: PageAddr) -> Result<Option<(PageKind, Bytes)>>;

    /// Persists a trim marker at `addr` and releases the payload.
    fn mark_trimmed(&mut self, addr: PageAddr) -> Result<()>;

    /// Persists unit metadata: the seal epoch and the prefix-trim horizon.
    fn put_meta(&mut self, epoch: u64, prefix_trim: PageAddr) -> Result<()>;

    /// Loads unit metadata, or `None` on a fresh store.
    fn get_meta(&self) -> Result<Option<(u64, PageAddr)>>;

    /// Enumerates every persisted slot for crash recovery.
    fn scan(&self) -> Result<Vec<ScannedPage>>;

    /// Flushes buffered state to stable storage.
    fn sync(&mut self) -> Result<()>;

    /// Applies a sequential prefix trim: releases every consumed address in
    /// `addrs` (each strictly below `horizon`) and persists the new horizon.
    ///
    /// The default marks each slot individually and then persists metadata;
    /// tiered stores override this to reclaim whole segments instead of
    /// touching every slot.
    fn trim_prefix(&mut self, epoch: u64, horizon: PageAddr, addrs: &[PageAddr]) -> Result<()> {
        for &addr in addrs {
            self.mark_trimmed(addr)?;
        }
        self.put_meta(epoch, horizon)
    }

    /// Migrates cold pages toward stable storage, returning how many pages
    /// moved. A no-op for single-tier stores.
    fn migrate_cold(&mut self) -> Result<u64> {
        Ok(0)
    }

    /// Verifies stored checksums, returning what was checked and how many
    /// slots failed. Single-tier RAM stores have nothing to verify.
    fn scrub(&self) -> Result<ScrubReport> {
        Ok(ScrubReport::default())
    }

    /// Occupancy/migration accounting; all zeros for single-tier stores.
    fn tier_stats(&self) -> TierStats {
        TierStats::default()
    }
}
