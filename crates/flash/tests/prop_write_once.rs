//! Property tests for the write-once invariant under arbitrary operation
//! interleavings, and for file-store recovery equivalence.

use proptest::prelude::*;
use tango_flash::{FileStore, FlashError, FlashUnit, PageRead, TieredStore};

#[derive(Debug, Clone)]
enum Op {
    Write(u64, Vec<u8>),
    Fill(u64),
    Trim(u64),
    TrimPrefix(u64),
    Read(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..32, proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(a, d)| Op::Write(a, d)),
        (0u64..32).prop_map(Op::Fill),
        (0u64..32).prop_map(Op::Trim),
        (0u64..32).prop_map(Op::TrimPrefix),
        (0u64..32).prop_map(Op::Read),
    ]
}

/// A trivially correct model of the write-once address space.
#[derive(Default)]
struct Model {
    slots: std::collections::HashMap<u64, Option<Vec<u8>>>, // None = junk
    consumed: std::collections::HashSet<u64>,
    trimmed: std::collections::HashSet<u64>,
    prefix: u64,
}

impl Model {
    fn read(&self, addr: u64) -> PageRead {
        if addr < self.prefix || self.trimmed.contains(&addr) {
            PageRead::Trimmed
        } else if let Some(slot) = self.slots.get(&addr) {
            match slot {
                Some(d) => PageRead::Data(bytes::Bytes::copy_from_slice(d)),
                None => PageRead::Junk,
            }
        } else {
            PageRead::Unwritten
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unit_matches_model(ops in proptest::collection::vec(op_strategy(), 1..128)) {
        let mut unit = FlashUnit::in_memory(64);
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Write(addr, data) => {
                    let res = unit.write(addr, &data);
                    if addr < model.prefix || model.trimmed.contains(&addr) {
                        let rejected = matches!(res,
                            Err(FlashError::Trimmed { .. }) | Err(FlashError::AlreadyWritten { .. }));
                        prop_assert!(rejected);
                    } else if model.consumed.contains(&addr) {
                        prop_assert_eq!(res, Err(FlashError::AlreadyWritten { addr }));
                    } else {
                        prop_assert!(res.is_ok());
                        model.slots.insert(addr, Some(data));
                        model.consumed.insert(addr);
                    }
                }
                Op::Fill(addr) => {
                    let res = unit.fill(addr);
                    if addr < model.prefix || model.trimmed.contains(&addr) {
                        let rejected = matches!(res,
                            Err(FlashError::Trimmed { .. }) | Err(FlashError::AlreadyWritten { .. }));
                        prop_assert!(rejected);
                    } else if model.consumed.contains(&addr) {
                        prop_assert_eq!(res, Err(FlashError::AlreadyWritten { addr }));
                    } else {
                        prop_assert!(res.is_ok());
                        model.slots.insert(addr, None);
                        model.consumed.insert(addr);
                    }
                }
                Op::Trim(addr) => {
                    unit.trim(addr).unwrap();
                    if addr >= model.prefix {
                        model.trimmed.insert(addr);
                        model.consumed.insert(addr);
                        model.slots.remove(&addr);
                    }
                }
                Op::TrimPrefix(horizon) => {
                    unit.trim_prefix(horizon).unwrap();
                    if horizon > model.prefix {
                        model.prefix = horizon;
                        model.slots.retain(|&a, _| a >= horizon);
                        model.trimmed.retain(|&a| a >= horizon);
                        for a in 0..horizon {
                            model.consumed.insert(a);
                        }
                    }
                }
                Op::Read(addr) => {
                    prop_assert_eq!(unit.read(addr).unwrap(), model.read(addr));
                }
            }
        }
    }

    #[test]
    fn file_store_recovery_preserves_state(
        writes in proptest::collection::vec((0u64..64, proptest::collection::vec(any::<u8>(), 0..32)), 1..24),
        fills in proptest::collection::vec(0u64..64, 0..8),
        trims in proptest::collection::vec(0u64..64, 0..8),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tango-flash-prop-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let mut expectations = Vec::new();
        {
            let store = FileStore::open(&dir, 64, 8).unwrap();
            let mut unit = FlashUnit::open(Box::new(store), 64).unwrap();
            for (addr, data) in &writes {
                let _ = unit.write(*addr, data);
            }
            for addr in &fills {
                let _ = unit.fill(*addr);
            }
            for addr in &trims {
                let _ = unit.trim(*addr);
            }
            for addr in 0u64..64 {
                expectations.push(unit.read(addr).unwrap());
            }
            unit.sync().unwrap();
        }
        // Reopen and compare every address.
        let store = FileStore::open(&dir, 64, 8).unwrap();
        let mut unit = FlashUnit::open(Box::new(store), 64).unwrap();
        for (addr, expected) in (0u64..64).zip(expectations) {
            prop_assert_eq!(unit.read(addr).unwrap(), expected);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiered_store_recovery_preserves_state(
        writes in proptest::collection::vec((0u64..64, proptest::collection::vec(any::<u8>(), 0..32)), 1..24),
        fills in proptest::collection::vec(0u64..64, 0..8),
        trims in proptest::collection::vec(0u64..64, 0..8),
        horizon in 0u64..48,
        hot_capacity in 0usize..12,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tango-tiered-prop-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let mut expectations = Vec::new();
        {
            let store = TieredStore::open(&dir, 64, 8, hot_capacity).unwrap();
            let mut unit = FlashUnit::open(Box::new(store), 64).unwrap();
            for (addr, data) in &writes {
                let _ = unit.write(*addr, data);
            }
            for addr in &fills {
                let _ = unit.fill(*addr);
            }
            for addr in &trims {
                let _ = unit.trim(*addr);
            }
            unit.trim_prefix(horizon).unwrap();
            let _ = unit.migrate_cold().unwrap();
            for addr in 0u64..64 {
                expectations.push(unit.read(addr).unwrap());
            }
            // The hot tail is volatile by design; sync is the durability
            // point that drains it cold before the "restart".
            unit.sync().unwrap();
        }
        let store = TieredStore::open(&dir, 64, 8, hot_capacity).unwrap();
        let mut unit = FlashUnit::open(Box::new(store), 64).unwrap();
        for (addr, expected) in (0u64..64).zip(expectations) {
            prop_assert_eq!(unit.read(addr).unwrap(), expected, "addr {}", addr);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
