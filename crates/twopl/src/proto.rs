//! Wire messages between 2PL coordinators and partition nodes.

use tango_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::{Key, TxnId, Value};

fn put_txn(w: &mut Writer, t: TxnId) {
    w.put_u64((t >> 64) as u64);
    w.put_u64(t as u64);
}

fn get_txn(r: &mut Reader<'_>) -> tango_wire::Result<TxnId> {
    let hi = r.get_u64()? as u128;
    let lo = r.get_u64()? as u128;
    Ok((hi << 64) | lo)
}

/// Requests a partition node accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRequest {
    /// Unlocked read of a key's value and version.
    Read {
        /// The key.
        key: Key,
    },
    /// Acquire an exclusive lock for a read-set item, validating that the
    /// version still matches the one observed at read time.
    LockRead {
        /// The key.
        key: Key,
        /// The locking transaction.
        txn: TxnId,
        /// The version the coordinator observed when it read the key.
        observed_version: u64,
    },
    /// Acquire an exclusive lock for a write-set item; returns the current
    /// version so the coordinator can detect write-write conflicts.
    LockWrite {
        /// The key.
        key: Key,
        /// The locking transaction.
        txn: TxnId,
    },
    /// Apply a committed write and release the lock.
    CommitWrite {
        /// The key.
        key: Key,
        /// The new value.
        value: Value,
        /// The committing transaction's timestamp (becomes the version).
        timestamp: u64,
        /// The lock holder.
        txn: TxnId,
    },
    /// Release a lock without writing (abort path, and read-lock release).
    Unlock {
        /// The key.
        key: Key,
        /// The lock holder.
        txn: TxnId,
    },
}

/// Responses from a partition node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeResponse {
    /// Read result: (value, version). Missing keys read as (0, 0).
    Value(Value, u64),
    /// Lock granted; for write locks carries the current version.
    Locked {
        /// Current version of the key.
        version: u64,
    },
    /// Lock held by another transaction.
    Busy,
    /// Read validation failed: the key changed since it was read.
    Changed,
    /// Commit/unlock acknowledged.
    Ok,
    /// The requester does not hold the lock it tried to use.
    NotHeld,
}

impl Encode for NodeRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            NodeRequest::Read { key } => {
                w.put_u8(0);
                w.put_u64(*key);
            }
            NodeRequest::LockRead { key, txn, observed_version } => {
                w.put_u8(1);
                w.put_u64(*key);
                put_txn(w, *txn);
                w.put_u64(*observed_version);
            }
            NodeRequest::LockWrite { key, txn } => {
                w.put_u8(2);
                w.put_u64(*key);
                put_txn(w, *txn);
            }
            NodeRequest::CommitWrite { key, value, timestamp, txn } => {
                w.put_u8(3);
                w.put_u64(*key);
                w.put_i64(*value);
                w.put_u64(*timestamp);
                put_txn(w, *txn);
            }
            NodeRequest::Unlock { key, txn } => {
                w.put_u8(4);
                w.put_u64(*key);
                put_txn(w, *txn);
            }
        }
    }
}

impl Decode for NodeRequest {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(NodeRequest::Read { key: r.get_u64()? }),
            1 => Ok(NodeRequest::LockRead {
                key: r.get_u64()?,
                txn: get_txn(r)?,
                observed_version: r.get_u64()?,
            }),
            2 => Ok(NodeRequest::LockWrite { key: r.get_u64()?, txn: get_txn(r)? }),
            3 => Ok(NodeRequest::CommitWrite {
                key: r.get_u64()?,
                value: r.get_i64()?,
                timestamp: r.get_u64()?,
                txn: get_txn(r)?,
            }),
            4 => Ok(NodeRequest::Unlock { key: r.get_u64()?, txn: get_txn(r)? }),
            tag => Err(WireError::InvalidTag { what: "NodeRequest", tag: tag as u64 }),
        }
    }
}

impl Encode for NodeResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            NodeResponse::Value(v, ver) => {
                w.put_u8(0);
                w.put_i64(*v);
                w.put_u64(*ver);
            }
            NodeResponse::Locked { version } => {
                w.put_u8(1);
                w.put_u64(*version);
            }
            NodeResponse::Busy => w.put_u8(2),
            NodeResponse::Changed => w.put_u8(3),
            NodeResponse::Ok => w.put_u8(4),
            NodeResponse::NotHeld => w.put_u8(5),
        }
    }
}

impl Decode for NodeResponse {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(NodeResponse::Value(r.get_i64()?, r.get_u64()?)),
            1 => Ok(NodeResponse::Locked { version: r.get_u64()? }),
            2 => Ok(NodeResponse::Busy),
            3 => Ok(NodeResponse::Changed),
            4 => Ok(NodeResponse::Ok),
            5 => Ok(NodeResponse::NotHeld),
            tag => Err(WireError::InvalidTag { what: "NodeResponse", tag: tag as u64 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_wire::{decode_from_slice, encode_to_vec};

    #[test]
    fn messages_roundtrip() {
        let reqs = vec![
            NodeRequest::Read { key: 5 },
            NodeRequest::LockRead { key: 5, txn: u128::MAX - 3, observed_version: 9 },
            NodeRequest::LockWrite { key: 5, txn: 1 },
            NodeRequest::CommitWrite { key: 5, value: -7, timestamp: 100, txn: 1 },
            NodeRequest::Unlock { key: 5, txn: 1 },
        ];
        for m in reqs {
            assert_eq!(decode_from_slice::<NodeRequest>(&encode_to_vec(&m)).unwrap(), m);
        }
        let resps = vec![
            NodeResponse::Value(-1, 2),
            NodeResponse::Locked { version: 3 },
            NodeResponse::Busy,
            NodeResponse::Changed,
            NodeResponse::Ok,
            NodeResponse::NotHeld,
        ];
        for m in resps {
            assert_eq!(decode_from_slice::<NodeResponse>(&encode_to_vec(&m)).unwrap(), m);
        }
    }
}
