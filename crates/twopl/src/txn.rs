use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tango_rpc::ClientConn;
use tango_wire::{decode_from_slice, encode_to_vec};

use crate::proto::{NodeRequest, NodeResponse};
use crate::{Key, Result, TwoPlError, TxnId, Value};

/// Outcome of one `commit` attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// All locks acquired and validated; writes applied.
    Committed,
    /// A lock was busy or a validation failed; nothing applied. The caller
    /// retries with a fresh read phase.
    Aborted,
}

/// A 2PL transaction coordinator (one per client).
pub struct TwoPlClient {
    client_id: u64,
    seq: AtomicU64,
    oracle: Arc<dyn ClientConn>,
    nodes: Vec<Arc<dyn ClientConn>>,
}

/// An in-progress transaction: observed reads and buffered writes.
#[derive(Debug, Default)]
pub struct TwoPlTxn {
    reads: Vec<(Key, u64)>, // key, observed version
    writes: Vec<(Key, Value)>,
}

impl TwoPlTxn {
    /// Buffers a write.
    pub fn write(&mut self, key: Key, value: Value) {
        self.writes.retain(|(k, _)| *k != key);
        self.writes.push((key, value));
    }
}

impl TwoPlClient {
    /// Creates a coordinator over connections to every partition node (in
    /// partition-id order) and to the timestamp oracle.
    pub fn new(
        client_id: u64,
        oracle: Arc<dyn ClientConn>,
        nodes: Vec<Arc<dyn ClientConn>>,
    ) -> Self {
        assert!(!nodes.is_empty(), "at least one partition required");
        Self { client_id, seq: AtomicU64::new(1), oracle, nodes }
    }

    /// The partition owning `key`.
    pub fn owner_of(&self, key: Key) -> usize {
        (key % self.nodes.len() as u64) as usize
    }

    fn call(&self, node: usize, req: &NodeRequest) -> Result<NodeResponse> {
        let resp = self.nodes[node].call(&encode_to_vec(req))?;
        Ok(decode_from_slice(&resp)?)
    }

    fn timestamp(&self) -> Result<u64> {
        let resp = self.oracle.call(&[])?;
        let bytes: [u8; 8] = resp
            .as_slice()
            .try_into()
            .map_err(|_| TwoPlError::Codec("bad oracle response".into()))?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Begins a transaction.
    pub fn begin(&self) -> TwoPlTxn {
        TwoPlTxn::default()
    }

    /// Reads a key through its owner, recording the observed version.
    pub fn read(&self, txn: &mut TwoPlTxn, key: Key) -> Result<Value> {
        // Read-your-writes from the buffer first.
        if let Some(&(_, v)) = txn.writes.iter().find(|(k, _)| *k == key) {
            return Ok(v);
        }
        let owner = self.owner_of(key);
        match self.call(owner, &NodeRequest::Read { key })? {
            NodeResponse::Value(value, version) => {
                if !txn.reads.iter().any(|(k, _)| *k == key) {
                    txn.reads.push((key, version));
                }
                Ok(value)
            }
            other => Err(TwoPlError::Codec(format!("unexpected read response {other:?}"))),
        }
    }

    /// The paper's `EndTX-2PL`: timestamp, read-set locks + validation,
    /// write-set locks + write-write conflict check, then commit.
    pub fn commit(&self, txn: TwoPlTxn) -> Result<TxOutcome> {
        let txid: TxnId =
            ((self.client_id as u128) << 64) | self.seq.fetch_add(1, Ordering::Relaxed) as u128;
        let timestamp = self.timestamp()?;

        // Deterministic global lock order prevents deadlock outright; the
        // try-lock Busy path handles the rest.
        let mut lock_plan: Vec<(Key, Option<u64>)> = Vec::new();
        for &(key, ver) in &txn.reads {
            if !txn.writes.iter().any(|(k, _)| *k == key) {
                lock_plan.push((key, Some(ver)));
            }
        }
        for &(key, _) in &txn.writes {
            lock_plan.push((key, None));
        }
        lock_plan.sort_by_key(|&(k, _)| k);
        lock_plan.dedup_by_key(|&mut (k, _)| k);

        let mut held: Vec<Key> = Vec::new();
        let mut conflict = false;
        for &(key, read_validation) in &lock_plan {
            let owner = self.owner_of(key);
            let resp = match read_validation {
                Some(observed_version) => {
                    self.call(owner, &NodeRequest::LockRead { key, txn: txid, observed_version })?
                }
                None => self.call(owner, &NodeRequest::LockWrite { key, txn: txid })?,
            };
            match resp {
                NodeResponse::Locked { version } => {
                    held.push(key);
                    // Write-write conflict: someone committed this key with
                    // a timestamp newer than ours.
                    if read_validation.is_none() && version > timestamp {
                        conflict = true;
                        break;
                    }
                    // For writes that were also read, validate here.
                    if read_validation.is_none() {
                        if let Some(&(_, observed)) = txn.reads.iter().find(|(k, _)| *k == key) {
                            if observed != version {
                                conflict = true;
                                break;
                            }
                        }
                    }
                }
                NodeResponse::Busy | NodeResponse::Changed => {
                    conflict = true;
                    break;
                }
                other => {
                    self.unlock_all(&held, txid)?;
                    return Err(TwoPlError::Codec(format!("unexpected lock response {other:?}")));
                }
            }
        }

        if conflict {
            self.unlock_all(&held, txid)?;
            return Ok(TxOutcome::Aborted);
        }

        // Commit phase: apply writes (which releases their locks), then
        // drop the pure read locks.
        for &(key, value) in &txn.writes {
            let owner = self.owner_of(key);
            match self
                .call(owner, &NodeRequest::CommitWrite { key, value, timestamp, txn: txid })?
            {
                NodeResponse::Ok => {}
                other => {
                    return Err(TwoPlError::Codec(format!("unexpected commit response {other:?}")))
                }
            }
        }
        let written: Vec<Key> = txn.writes.iter().map(|&(k, _)| k).collect();
        let read_only_locks: Vec<Key> = held.into_iter().filter(|k| !written.contains(k)).collect();
        self.unlock_all(&read_only_locks, txid)?;
        Ok(TxOutcome::Committed)
    }

    fn unlock_all(&self, keys: &[Key], txid: TxnId) -> Result<()> {
        for &key in keys {
            let owner = self.owner_of(key);
            self.call(owner, &NodeRequest::Unlock { key, txn: txid })?;
        }
        Ok(())
    }

    /// Runs a read-modify-write transaction body until it commits,
    /// returning the number of aborts endured.
    pub fn run_until_committed(
        &self,
        mut body: impl FnMut(&Self, &mut TwoPlTxn) -> Result<()>,
    ) -> Result<u64> {
        let mut aborts = 0;
        loop {
            let mut txn = self.begin();
            body(self, &mut txn)?;
            match self.commit(txn)? {
                TxOutcome::Committed => return Ok(aborts),
                TxOutcome::Aborted => aborts += 1,
            }
        }
    }
}
