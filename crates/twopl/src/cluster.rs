use std::sync::Arc;

use tango_rpc::{ClientConn, LocalConn};

use crate::node::TwoPlNode;
use crate::oracle::TimestampOracle;
use crate::txn::TwoPlClient;

/// An in-process 2PL deployment: N partition nodes plus the oracle.
pub struct LocalTwoPlCluster {
    oracle: Arc<TimestampOracle>,
    nodes: Vec<Arc<TwoPlNode>>,
}

impl LocalTwoPlCluster {
    /// Creates a cluster with `partitions` nodes.
    pub fn new(partitions: usize) -> Self {
        Self {
            oracle: Arc::new(TimestampOracle::new()),
            nodes: (0..partitions).map(|_| Arc::new(TwoPlNode::new())).collect(),
        }
    }

    /// Creates a coordinator for `client_id`.
    pub fn client(&self, client_id: u64) -> TwoPlClient {
        let oracle: Arc<dyn ClientConn> =
            Arc::new(LocalConn::new(Arc::clone(&self.oracle) as Arc<dyn tango_rpc::RpcHandler>));
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                Arc::new(LocalConn::new(Arc::clone(n) as Arc<dyn tango_rpc::RpcHandler>))
                    as Arc<dyn ClientConn>
            })
            .collect();
        TwoPlClient::new(client_id, oracle, nodes)
    }

    /// Direct access to a partition (for invariant checks).
    pub fn node(&self, idx: usize) -> &Arc<TwoPlNode> {
        &self.nodes[idx]
    }

    /// Total locks currently held across the cluster.
    pub fn held_locks(&self) -> usize {
        self.nodes.iter().map(|n| n.held_locks()).sum()
    }

    /// The oracle (for issued-timestamp accounting).
    pub fn oracle(&self) -> &Arc<TimestampOracle> {
        &self.oracle
    }
}
