#![warn(missing_docs)]
//! The distributed two-phase-locking baseline of §6.2 (Figure 10, middle).
//!
//! The paper compares Tango's cross-partition transactions against "a
//! simple, distributed 2-phase locking protocol … similar to that used by
//! Percolator, except that it implements serializability instead of
//! snapshot isolation". This crate implements that protocol faithfully:
//!
//! * a centralized [`TimestampOracle`] (the Percolator timestamp server —
//!   the paper reuses its sequencer for this role);
//! * per-client partitions of a keyed store, each with an exclusive lock
//!   table ([`TwoPlNode`]);
//! * a coordinator ([`TwoPlClient`]) that on `EndTX-2PL` (1) acquires a
//!   timestamp, (2) locks and validates its read set, (3) acquires write
//!   locks from the owning clients, checking for write-write conflicts
//!   against the returned versions, and (4) commits by updating items and
//!   versions and unlocking — retrying with a fresh timestamp on any
//!   conflict.
//!
//! Deadlock is avoided with try-locks plus sorted lock acquisition; a
//! failed lock aborts and retries, which is also how the paper's version
//! behaves ("the transaction unlocks all items and retries with a new
//! sequence number").

mod cluster;
mod node;
mod oracle;
mod proto;
mod txn;

pub use cluster::LocalTwoPlCluster;
pub use node::TwoPlNode;
pub use oracle::TimestampOracle;
pub use txn::{TwoPlClient, TxOutcome};

/// Keys are plain integers; ownership is `key % num_partitions`.
pub type Key = u64;

/// Values are integers (benchmark-oriented, like the paper's maps).
pub type Value = i64;

/// Transaction identifiers: (client id, local sequence).
pub type TxnId = u128;

/// Errors surfaced by the 2PL stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwoPlError {
    /// Transport failure.
    Rpc(String),
    /// Malformed message.
    Codec(String),
}

impl std::fmt::Display for TwoPlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TwoPlError::Rpc(e) => write!(f, "rpc failure: {e}"),
            TwoPlError::Codec(e) => write!(f, "codec failure: {e}"),
        }
    }
}

impl std::error::Error for TwoPlError {}

impl From<tango_rpc::RpcError> for TwoPlError {
    fn from(e: tango_rpc::RpcError) -> Self {
        TwoPlError::Rpc(e.to_string())
    }
}

impl From<tango_wire::WireError> for TwoPlError {
    fn from(e: tango_wire::WireError) -> Self {
        TwoPlError::Codec(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, TwoPlError>;
