use std::collections::HashMap;

use parking_lot::Mutex;
use tango_rpc::RpcHandler;
use tango_wire::{decode_from_slice, encode_to_vec};

use crate::proto::{NodeRequest, NodeResponse};
use crate::{Key, TxnId, Value};

#[derive(Default)]
struct NodeState {
    /// key -> (version, value); versions are committing timestamps.
    store: HashMap<Key, (u64, Value)>,
    /// Exclusive try-locks: key -> holder.
    locks: HashMap<Key, TxnId>,
}

/// One partition of the 2PL store: a versioned key-value map plus an
/// exclusive lock table. In the paper's experiment each client hosts one
/// partition and coordinators reach the others over the network.
#[derive(Default)]
pub struct TwoPlNode {
    state: Mutex<NodeState>,
}

impl TwoPlNode {
    /// Creates an empty partition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one decoded request.
    pub fn process(&self, req: NodeRequest) -> NodeResponse {
        let mut s = self.state.lock();
        match req {
            NodeRequest::Read { key } => {
                let (version, value) = s.store.get(&key).copied().unwrap_or((0, 0));
                NodeResponse::Value(value, version)
            }
            NodeRequest::LockRead { key, txn, observed_version } => {
                match s.locks.get(&key) {
                    Some(&holder) if holder != txn => return NodeResponse::Busy,
                    _ => {}
                }
                let current = s.store.get(&key).map(|&(v, _)| v).unwrap_or(0);
                if current != observed_version {
                    return NodeResponse::Changed;
                }
                s.locks.insert(key, txn);
                NodeResponse::Locked { version: current }
            }
            NodeRequest::LockWrite { key, txn } => {
                match s.locks.get(&key) {
                    Some(&holder) if holder != txn => return NodeResponse::Busy,
                    _ => {}
                }
                s.locks.insert(key, txn);
                let version = s.store.get(&key).map(|&(v, _)| v).unwrap_or(0);
                NodeResponse::Locked { version }
            }
            NodeRequest::CommitWrite { key, value, timestamp, txn } => {
                if s.locks.get(&key) != Some(&txn) {
                    return NodeResponse::NotHeld;
                }
                s.store.insert(key, (timestamp, value));
                s.locks.remove(&key);
                NodeResponse::Ok
            }
            NodeRequest::Unlock { key, txn } => {
                if s.locks.get(&key) == Some(&txn) {
                    s.locks.remove(&key);
                }
                NodeResponse::Ok
            }
        }
    }

    /// Direct read for tests and invariant checks.
    pub fn peek(&self, key: Key) -> (u64, Value) {
        self.state.lock().store.get(&key).copied().unwrap_or((0, 0))
    }

    /// Number of currently held locks (should drain to zero at quiescence).
    pub fn held_locks(&self) -> usize {
        self.state.lock().locks.len()
    }
}

impl RpcHandler for TwoPlNode {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        let response = match decode_from_slice::<NodeRequest>(request) {
            Ok(req) => self.process(req),
            Err(_) => NodeResponse::NotHeld,
        };
        encode_to_vec(&response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_conflicts_and_reentrancy() {
        let node = TwoPlNode::new();
        assert_eq!(
            node.process(NodeRequest::LockWrite { key: 1, txn: 10 }),
            NodeResponse::Locked { version: 0 }
        );
        // Reentrant for the same txn; busy for others.
        assert_eq!(
            node.process(NodeRequest::LockWrite { key: 1, txn: 10 }),
            NodeResponse::Locked { version: 0 }
        );
        assert_eq!(node.process(NodeRequest::LockWrite { key: 1, txn: 11 }), NodeResponse::Busy);
        assert_eq!(node.process(NodeRequest::Unlock { key: 1, txn: 10 }), NodeResponse::Ok);
        assert_eq!(
            node.process(NodeRequest::LockWrite { key: 1, txn: 11 }),
            NodeResponse::Locked { version: 0 }
        );
    }

    #[test]
    fn read_validation() {
        let node = TwoPlNode::new();
        // Initial state: version 0.
        assert_eq!(
            node.process(NodeRequest::LockRead { key: 2, txn: 1, observed_version: 0 }),
            NodeResponse::Locked { version: 0 }
        );
        node.process(NodeRequest::Unlock { key: 2, txn: 1 });
        // Commit a write at ts 50.
        node.process(NodeRequest::LockWrite { key: 2, txn: 1 });
        node.process(NodeRequest::CommitWrite { key: 2, value: 9, timestamp: 50, txn: 1 });
        // A stale observation now fails validation.
        assert_eq!(
            node.process(NodeRequest::LockRead { key: 2, txn: 2, observed_version: 0 }),
            NodeResponse::Changed
        );
        assert_eq!(
            node.process(NodeRequest::LockRead { key: 2, txn: 2, observed_version: 50 }),
            NodeResponse::Locked { version: 50 }
        );
    }

    #[test]
    fn commit_requires_lock() {
        let node = TwoPlNode::new();
        assert_eq!(
            node.process(NodeRequest::CommitWrite { key: 3, value: 1, timestamp: 5, txn: 9 }),
            NodeResponse::NotHeld
        );
        assert_eq!(node.peek(3), (0, 0));
    }
}
