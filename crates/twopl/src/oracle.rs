use std::sync::atomic::{AtomicU64, Ordering};

use tango_rpc::RpcHandler;

/// The centralized timestamp oracle (Percolator's timestamp server; the
/// paper runs this role on its sequencer machine).
///
/// Request body is ignored; the response is the next 8-byte timestamp.
#[derive(Debug, Default)]
pub struct TimestampOracle {
    next: AtomicU64,
}

impl TimestampOracle {
    /// Creates an oracle starting at timestamp 1.
    pub fn new() -> Self {
        Self { next: AtomicU64::new(1) }
    }

    /// Issues the next timestamp.
    pub fn issue(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Timestamps issued so far.
    pub fn issued(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - 1
    }
}

impl RpcHandler for TimestampOracle {
    fn handle(&self, _request: &[u8]) -> Vec<u8> {
        self.issue().to_le_bytes().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_unique_and_monotonic() {
        let oracle = TimestampOracle::new();
        let a = oracle.issue();
        let b = oracle.issue();
        assert!(b > a);
        assert_eq!(oracle.issued(), 2);
    }
}
