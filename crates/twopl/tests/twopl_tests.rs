//! Serializability tests for the 2PL baseline.

use twopl::{LocalTwoPlCluster, TxOutcome};

#[test]
fn single_partition_read_write() {
    let cluster = LocalTwoPlCluster::new(1);
    let client = cluster.client(1);
    let mut txn = client.begin();
    assert_eq!(client.read(&mut txn, 5).unwrap(), 0);
    txn.write(5, 42);
    // Read-your-writes.
    assert_eq!(client.read(&mut txn, 5).unwrap(), 42);
    assert_eq!(client.commit(txn).unwrap(), TxOutcome::Committed);

    let mut txn = client.begin();
    assert_eq!(client.read(&mut txn, 5).unwrap(), 42);
    assert_eq!(client.commit(txn).unwrap(), TxOutcome::Committed);
    assert_eq!(cluster.held_locks(), 0);
}

#[test]
fn stale_read_aborts() {
    let cluster = LocalTwoPlCluster::new(2);
    let a = cluster.client(1);
    let b = cluster.client(2);

    // A reads key 1, then B commits a write to it, then A tries to commit.
    let mut ta = a.begin();
    a.read(&mut ta, 1).unwrap();
    ta.write(2, 10);

    let mut tb = b.begin();
    b.read(&mut tb, 1).unwrap();
    tb.write(1, 99);
    assert_eq!(b.commit(tb).unwrap(), TxOutcome::Committed);

    assert_eq!(a.commit(ta).unwrap(), TxOutcome::Aborted);
    // B's write survived; A's did not apply.
    assert_eq!(cluster.node(1).peek(1).1, 99);
    assert_eq!(cluster.node(0).peek(2).1, 0);
    assert_eq!(cluster.held_locks(), 0);
}

#[test]
fn cross_partition_transfer_preserves_sum() {
    let cluster = LocalTwoPlCluster::new(4);
    let setup = cluster.client(0);
    let mut t = setup.begin();
    t.write(0, 1000); // partition 0
    t.write(1, 0); // partition 1
    assert_eq!(setup.commit(t).unwrap(), TxOutcome::Committed);

    let threads: Vec<_> = (0..4u64)
        .map(|id| {
            let client = cluster.client(id + 1);
            std::thread::spawn(move || {
                let mut total_aborts = 0;
                for _ in 0..25 {
                    total_aborts += client
                        .run_until_committed(|c, txn| {
                            let from = c.read(txn, 0)?;
                            let to = c.read(txn, 1)?;
                            txn.write(0, from - 1);
                            txn.write(1, to + 1);
                            Ok(())
                        })
                        .unwrap();
                }
                total_aborts
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let a = cluster.node(0).peek(0).1;
    let b = cluster.node(1).peek(1).1;
    assert_eq!(a + b, 1000, "money conserved");
    assert_eq!(b, 100, "exactly 100 transfers");
    assert_eq!(cluster.held_locks(), 0, "no leaked locks");
}

#[test]
fn no_lost_updates_under_contention() {
    let cluster = LocalTwoPlCluster::new(3);
    let threads: Vec<_> = (0..6u64)
        .map(|id| {
            let client = cluster.client(id + 1);
            std::thread::spawn(move || {
                for _ in 0..20 {
                    client
                        .run_until_committed(|c, txn| {
                            let v = c.read(txn, 7)?;
                            txn.write(7, v + 1);
                            Ok(())
                        })
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(cluster.node((7 % 3) as usize).peek(7).1, 120);
    assert_eq!(cluster.held_locks(), 0);
}

#[test]
fn write_write_conflict_detected_via_versions() {
    let cluster = LocalTwoPlCluster::new(1);
    let a = cluster.client(1);
    let b = cluster.client(2);

    // A gets an early timestamp by committing later than B's commit: build
    // the race by hand. A begins (no reads), B writes key 3 with a newer
    // timestamp, then A tries a blind write with its older timestamp.
    let mut ta = a.begin();
    ta.write(3, 1);
    // Force A's timestamp to be older: issue timestamps to B first via a
    // committed transaction.
    let mut tb = b.begin();
    tb.write(3, 2);
    assert_eq!(b.commit(tb).unwrap(), TxOutcome::Committed);
    // A's commit now acquires a NEWER timestamp (the oracle is monotonic),
    // so no write-write conflict: last-writer-wins is correct here.
    assert_eq!(a.commit(ta).unwrap(), TxOutcome::Committed);
    assert_eq!(cluster.node(0).peek(3).1, 1);
}
