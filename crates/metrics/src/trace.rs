//! Request tracing: trace contexts, spans, and a lock-free span ring.
//!
//! A *trace* follows one logical request (an `append`, `read`, or `sync`)
//! across components and — via the wire v3 trace extension — across
//! processes. The client opens a *root span*; every downstream component
//! that sees the propagated [`TraceContext`] opens a *child span* whose
//! `parent_span_id` is the caller's span, so the recorded spans form a
//! tree per `trace_id`.
//!
//! Recording is sampled with the same 1-in-N discipline as the latency
//! histograms (default 1-in-16; the first request always hits, which
//! keeps single-shot tests deterministic). Sampled root spans that exceed
//! a configurable threshold are additionally copied into a dedicated
//! slow-request ring and counted in `trace.slow_requests`, so slow
//! requests are never evicted by fast ones.
//!
//! The rings are bounded and lock-free: each slot is a seqlock made of
//! plain `AtomicU64`s. Writers claim a slot with one `fetch_add` on the
//! head and a CAS on the slot's sequence word; readers skip slots whose
//! sequence word is odd (write in progress) or changed while reading.
//! Under extreme overrun a record can be dropped, never torn into
//! undefined behaviour — every access is atomic.
//!
//! Propagation inside a process is by thread-local context: creating a
//! span installs its context for the current thread and restores the
//! previous one when the span finishes. The in-process transport calls
//! handlers on the caller's thread, so context flows through a whole
//! `LocalCluster` with no plumbing; the TCP transport carries the context
//! in the frame header and installs it around the server-side handler.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::ring::SeqlockRing;
use crate::Sampler;

/// Environment variable that overrides the slow-request threshold, in
/// milliseconds. Read at registry construction and by
/// [`Tracer::refresh_slow_threshold_from_env`] on live registries (the
/// scrape server calls the latter per request, so exporting the variable
/// and re-scraping reconfigures a running node).
pub const SLOW_MS_ENV: &str = "TANGO_SLOW_MS";

fn slow_threshold_from_env() -> Option<Duration> {
    std::env::var(SLOW_MS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
}

/// The identity a request carries across component and process
/// boundaries: which trace it belongs to and which span is the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identifies the whole request tree; identical in every span of it.
    pub trace_id: u64,
    /// The currently active span — children record it as their parent.
    pub span_id: u64,
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The trace context active on this thread, if any.
#[inline]
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// Installs `ctx` as the current thread's trace context until the guard
/// drops (used by transports to bracket a server-side handler call).
pub fn install(ctx: Option<TraceContext>) -> ContextGuard {
    ContextGuard { prev: CURRENT.with(|c| c.replace(ctx)), _not_send: PhantomData }
}

/// Restores the previously installed context on drop.
pub struct ContextGuard {
    prev: Option<TraceContext>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// What a span measured. Kept as a closed enum so a [`SpanRecord`] stays
/// six plain `u64`s in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// A client-side `append` (root of the append tree).
    ClientAppend = 0,
    /// A client-side random `read`.
    ClientRead = 1,
    /// A stream-level `sync` (tail query + playback).
    ClientSync = 2,
    /// Sequencer token grant (`Next`/`NextBatch`).
    SeqGrant = 3,
    /// Sequencer tail/stream query.
    SeqQuery = 4,
    /// Storage-node page write (data or junk fill).
    StorageWrite = 5,
    /// Storage-node page read.
    StorageRead = 6,
    /// Storage-node control operation (seal, trim, copy, tail).
    StorageCtl = 7,
    /// Anything else.
    Other = 8,
}

impl SpanKind {
    /// Stable display name (used by the JSON rendering).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::ClientAppend => "client.append",
            SpanKind::ClientRead => "client.read",
            SpanKind::ClientSync => "client.sync",
            SpanKind::SeqGrant => "seq.grant",
            SpanKind::SeqQuery => "seq.query",
            SpanKind::StorageWrite => "storage.write",
            SpanKind::StorageRead => "storage.read",
            SpanKind::StorageCtl => "storage.ctl",
            SpanKind::Other => "other",
        }
    }

    fn from_u64(v: u64) -> Self {
        match v {
            0 => SpanKind::ClientAppend,
            1 => SpanKind::ClientRead,
            2 => SpanKind::ClientSync,
            3 => SpanKind::SeqGrant,
            4 => SpanKind::SeqQuery,
            5 => SpanKind::StorageWrite,
            6 => SpanKind::StorageRead,
            7 => SpanKind::StorageCtl,
            _ => SpanKind::Other,
        }
    }
}

/// One finished span as read back from the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the process).
    pub span_id: u64,
    /// Parent span id, 0 for root spans.
    pub parent_span_id: u64,
    /// What was measured.
    pub kind: SpanKind,
    /// Start time in nanoseconds since the registry was created. Only
    /// comparable within one process — cross-node span trees are joined
    /// by ids, not clocks.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
}

impl SpanRecord {
    /// True for root spans (no parent).
    pub fn is_root(&self) -> bool {
        self.parent_span_id == 0
    }
}

const SPAN_WORDS: usize = 6;

/// Bounded lock-free MPMC ring of [`SpanRecord`]s (overwrites oldest).
/// The seqlock slot discipline lives in [`crate::ring::SeqlockRing`],
/// shared with the event journal.
pub(crate) struct SpanRing {
    ring: SeqlockRing<SPAN_WORDS>,
}

impl SpanRing {
    pub(crate) fn new(capacity: usize) -> Self {
        Self { ring: SeqlockRing::new(capacity) }
    }

    pub(crate) fn push(&self, rec: &SpanRecord) {
        self.ring.push(&[
            rec.trace_id,
            rec.span_id,
            rec.parent_span_id,
            rec.kind as u64,
            rec.start_ns,
            rec.duration_ns,
        ]);
    }

    /// Every stable record currently in the ring, oldest first by start
    /// time. Concurrent writers may overwrite slots mid-scan; such slots
    /// are skipped, never misread.
    pub(crate) fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .ring
            .snapshot()
            .iter()
            .map(|words| SpanRecord {
                trace_id: words[0],
                span_id: words[1],
                parent_span_id: words[2],
                kind: SpanKind::from_u64(words[3]),
                start_ns: words[4],
                duration_ns: words[5],
            })
            .collect();
        out.sort_by_key(|r| r.start_ns);
        out
    }
}

/// How a registry samples and retains spans.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Root spans are sampled 1-in-`sample_one_in` (power of two). The
    /// corfu client shares its histogram sampler instead, so traces and
    /// latency samples cover the same requests.
    pub sample_one_in: u64,
    /// Sampled root spans at least this slow are copied to the slow ring
    /// and counted in `trace.slow_requests`.
    pub slow_threshold: Duration,
    /// Capacity of the main span ring (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Capacity of the slow-request ring.
    pub slow_capacity: usize,
    /// Capacity of the control-plane event journal (see
    /// [`crate::events`]).
    pub event_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            sample_one_in: 16,
            slow_threshold: slow_threshold_from_env().unwrap_or(Duration::from_millis(10)),
            ring_capacity: 1024,
            slow_capacity: 128,
            event_capacity: 1024,
        }
    }
}

pub(crate) struct TracerInner {
    ring: SpanRing,
    slow: SpanRing,
    sampler: Sampler,
    slow_threshold_ns: AtomicU64,
    pub(crate) slow_requests: AtomicU64,
    pub(crate) spans_recorded: AtomicU64,
    epoch: Instant,
}

impl TracerInner {
    pub(crate) fn new(cfg: &TraceConfig) -> Self {
        Self {
            ring: SpanRing::new(cfg.ring_capacity),
            slow: SpanRing::new(cfg.slow_capacity),
            sampler: Sampler::one_in(cfg.sample_one_in),
            slow_threshold_ns: AtomicU64::new(
                cfg.slow_threshold.as_nanos().min(u64::MAX as u128) as u64
            ),
            slow_requests: AtomicU64::new(0),
            spans_recorded: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    pub(crate) fn spans(&self) -> Vec<SpanRecord> {
        self.ring.snapshot()
    }

    pub(crate) fn slow_spans(&self) -> Vec<SpanRecord> {
        self.slow.snapshot()
    }
}

/// Process-wide span-id allocator: ids are unique within a process and
/// never 0 (0 means "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Derives a well-mixed, non-zero trace id from a root span id
/// (splitmix64 finalizer), so traces are distinguishable even though
/// span ids are sequential.
fn trace_id_for(span_id: u64) -> u64 {
    let mut z = span_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

/// Handle for creating spans against one registry's rings. Cheap to
/// clone; a handle from a disabled registry is inert.
#[derive(Clone, Default)]
pub struct Tracer {
    pub(crate) inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A permanently disabled tracer (all spans are inert).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// True if spans created here can be recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a root span, subject to this tracer's own sampler.
    pub fn root(&self, kind: SpanKind) -> Span {
        match &self.inner {
            Some(inner) if inner.sampler.hit() => self.start(kind, true),
            _ => Span::inert(),
        }
    }

    /// Opens a root span unconditionally (when enabled). Callers that
    /// already made a sampling decision — e.g. the corfu client, which
    /// shares one sampler between its latency timer and its trace — use
    /// this so both observations cover the same requests.
    pub fn root_forced(&self, kind: SpanKind) -> Span {
        if self.inner.is_some() {
            self.start(kind, true)
        } else {
            Span::inert()
        }
    }

    /// Opens a child of the current thread's trace context, or an inert
    /// span when there is none (i.e. the request was not sampled). One
    /// thread-local read on the untraced path.
    pub fn child(&self, kind: SpanKind) -> Span {
        if self.inner.is_some() && current().is_some() {
            self.start(kind, false)
        } else {
            Span::inert()
        }
    }

    fn start(&self, kind: SpanKind, root: bool) -> Span {
        let inner = self.inner.as_ref().expect("checked by callers");
        let span_id = next_span_id();
        let (trace_id, parent) = if root {
            (trace_id_for(span_id), 0)
        } else {
            let ctx = current().expect("checked by callers");
            (ctx.trace_id, ctx.span_id)
        };
        let ctx = TraceContext { trace_id, span_id };
        let prev = CURRENT.with(|c| c.replace(Some(ctx)));
        Span {
            state: Some(SpanState {
                inner: Arc::clone(inner),
                ctx,
                parent,
                kind,
                start: Instant::now(),
                prev,
            }),
            _not_send: PhantomData,
        }
    }

    /// Changes the slow-request threshold at runtime.
    pub fn set_slow_threshold(&self, threshold: Duration) {
        if let Some(inner) = &self.inner {
            inner
                .slow_threshold_ns
                .store(threshold.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
        }
    }

    /// The currently effective slow-request threshold (`None` when the
    /// tracer is disabled).
    pub fn slow_threshold(&self) -> Option<Duration> {
        self.inner
            .as_ref()
            .map(|i| Duration::from_nanos(i.slow_threshold_ns.load(Ordering::Relaxed)))
    }

    /// Re-reads [`SLOW_MS_ENV`] and applies it to this live tracer.
    /// Returns the applied threshold, or `None` when the variable is
    /// unset/unparsable (the current threshold is then left unchanged).
    pub fn refresh_slow_threshold_from_env(&self) -> Option<Duration> {
        let threshold = slow_threshold_from_env()?;
        self.set_slow_threshold(threshold);
        Some(threshold)
    }

    /// All stable spans currently in the ring, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.as_ref().map(|i| i.spans()).unwrap_or_default()
    }

    /// All stable spans in the slow-request ring, oldest first.
    pub fn slow_spans(&self) -> Vec<SpanRecord> {
        self.inner.as_ref().map(|i| i.slow_spans()).unwrap_or_default()
    }
}

struct SpanState {
    inner: Arc<TracerInner>,
    ctx: TraceContext,
    parent: u64,
    kind: SpanKind,
    start: Instant,
    prev: Option<TraceContext>,
}

/// An open span. Records into the ring and restores the previous trace
/// context when dropped (or [`Span::finish`]ed). Must stay on the thread
/// that created it — it is `!Send` for that reason.
#[derive(Default)]
pub struct Span {
    state: Option<SpanState>,
    _not_send: PhantomData<*const ()>,
}

impl Span {
    /// A span that records nothing (unsampled or disabled).
    pub fn inert() -> Self {
        Self::default()
    }

    /// The context this span propagates, if it is live.
    pub fn context(&self) -> Option<TraceContext> {
        self.state.as_ref().map(|s| s.ctx)
    }

    /// Ends the span now (identical to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(s) = self.state.take() else { return };
        CURRENT.with(|c| c.set(s.prev));
        let rec = SpanRecord {
            trace_id: s.ctx.trace_id,
            span_id: s.ctx.span_id,
            parent_span_id: s.parent,
            kind: s.kind,
            start_ns: s.start.duration_since(s.inner.epoch).as_nanos().min(u64::MAX as u128) as u64,
            duration_ns: s.start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        };
        s.inner.ring.push(&rec);
        s.inner.spans_recorded.fetch_add(1, Ordering::Relaxed);
        if rec.parent_span_id == 0
            && rec.duration_ns >= s.inner.slow_threshold_ns.load(Ordering::Relaxed)
        {
            s.inner.slow.push(&rec);
            s.inner.slow_requests.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Renders spans as a JSON array (hand-rolled like the snapshot JSON).
pub fn spans_to_json(spans: &[SpanRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"trace_id\":{},\"span_id\":{},\"parent_span_id\":{},\"kind\":\"{}\",\
             \"start_ns\":{},\"duration_ns\":{}}}",
            s.trace_id,
            s.span_id,
            s.parent_span_id,
            s.kind.name(),
            s.start_ns,
            s.duration_ns,
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn root_and_child_nest_via_thread_local() {
        let r = Registry::new();
        let t = r.tracer();
        assert!(t.is_enabled());
        assert!(current().is_none());

        let root = t.root_forced(SpanKind::ClientAppend);
        let root_ctx = root.context().unwrap();
        assert_eq!(current(), Some(root_ctx));

        {
            let child = t.child(SpanKind::SeqGrant);
            let child_ctx = child.context().unwrap();
            assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
            assert_ne!(child_ctx.span_id, root_ctx.span_id);
            assert_eq!(current(), Some(child_ctx));
        }
        // Child restored the root context.
        assert_eq!(current(), Some(root_ctx));
        drop(root);
        assert!(current().is_none());

        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        let root_rec = spans.iter().find(|s| s.kind == SpanKind::ClientAppend).unwrap();
        let child_rec = spans.iter().find(|s| s.kind == SpanKind::SeqGrant).unwrap();
        assert!(root_rec.is_root());
        assert_eq!(child_rec.parent_span_id, root_rec.span_id);
        assert_eq!(child_rec.trace_id, root_rec.trace_id);
    }

    #[test]
    fn child_without_context_is_inert() {
        let r = Registry::new();
        let t = r.tracer();
        let span = t.child(SpanKind::StorageWrite);
        assert!(span.context().is_none());
        drop(span);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn disabled_tracer_is_inert_and_leaves_no_context() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let span = t.root_forced(SpanKind::ClientRead);
        assert!(span.context().is_none());
        assert!(current().is_none());
        drop(span);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn install_restores_previous_context() {
        let ctx = TraceContext { trace_id: 7, span_id: 9 };
        {
            let _g = install(Some(ctx));
            assert_eq!(current(), Some(ctx));
            {
                let _g2 = install(None);
                assert!(current().is_none());
            }
            assert_eq!(current(), Some(ctx));
        }
        assert!(current().is_none());
    }

    #[test]
    fn ring_wraps_and_keeps_latest() {
        let ring = SpanRing::new(4);
        for i in 0..10u64 {
            ring.push(&SpanRecord {
                trace_id: 1,
                span_id: i + 1,
                parent_span_id: 0,
                kind: SpanKind::Other,
                start_ns: i,
                duration_ns: 5,
            });
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 4);
        let ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
    }

    #[test]
    fn ring_survives_concurrent_writers() {
        use std::thread;
        let r = Registry::new();
        let t = r.tracer();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                thread::spawn(move || {
                    for _ in 0..500 {
                        t.root_forced(SpanKind::Other).finish();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let spans = t.spans();
        assert!(!spans.is_empty());
        assert!(spans.len() <= 1024);
        for s in &spans {
            assert_eq!(s.kind, SpanKind::Other);
            assert!(s.is_root());
            assert_ne!(s.span_id, 0);
        }
    }

    #[test]
    fn slow_roots_are_forced_into_the_slow_ring() {
        let r = Registry::with_trace(TraceConfig {
            slow_threshold: Duration::from_nanos(0),
            ..TraceConfig::default()
        });
        let t = r.tracer();
        t.root_forced(SpanKind::ClientAppend).finish();
        // Children are never "slow requests" — only roots are.
        let root = t.root_forced(SpanKind::ClientAppend);
        t.child(SpanKind::SeqGrant).finish();
        root.finish();

        let slow = t.slow_spans();
        assert_eq!(slow.len(), 2);
        assert!(slow.iter().all(|s| s.is_root()));
        assert_eq!(r.snapshot().counter("trace.slow_requests"), 2);
    }

    #[test]
    fn fast_roots_stay_out_of_the_slow_ring() {
        let r = Registry::with_trace(TraceConfig {
            slow_threshold: Duration::from_secs(3600),
            ..TraceConfig::default()
        });
        let t = r.tracer();
        t.root_forced(SpanKind::ClientAppend).finish();
        assert!(t.slow_spans().is_empty());
        assert_eq!(r.snapshot().counter("trace.slow_requests"), 0);
    }

    #[test]
    fn sampled_root_respects_sampler() {
        let r = Registry::with_trace(TraceConfig { sample_one_in: 4, ..TraceConfig::default() });
        let t = r.tracer();
        for _ in 0..16 {
            t.root(SpanKind::ClientRead).finish();
        }
        assert_eq!(t.spans().len(), 4);
    }

    #[test]
    fn slow_threshold_env_applies_to_live_registry() {
        // This test sets TANGO_SLOW_MS briefly; every other test that
        // cares about the threshold passes an explicit value, so the
        // transient override is harmless.
        let r = Registry::with_trace(TraceConfig {
            slow_threshold: Duration::from_millis(250),
            ..TraceConfig::default()
        });
        let t = r.tracer();
        assert_eq!(t.slow_threshold(), Some(Duration::from_millis(250)));

        std::env::set_var(SLOW_MS_ENV, "0");
        let applied = t.refresh_slow_threshold_from_env();
        std::env::remove_var(SLOW_MS_ENV);
        assert_eq!(applied, Some(Duration::from_millis(0)));
        assert_eq!(t.slow_threshold(), Some(Duration::from_millis(0)));

        // The changed threshold takes effect on the live registry: with a
        // zero threshold every sampled root is a slow request.
        t.root_forced(SpanKind::ClientAppend).finish();
        assert_eq!(t.slow_spans().len(), 1);
        assert_eq!(r.snapshot().counter("trace.slow_requests"), 1);

        // Unset variable leaves the threshold unchanged.
        assert_eq!(t.refresh_slow_threshold_from_env(), None);
        assert_eq!(t.slow_threshold(), Some(Duration::from_millis(0)));
    }

    #[test]
    fn spans_json_renders() {
        let spans = vec![SpanRecord {
            trace_id: 3,
            span_id: 4,
            parent_span_id: 0,
            kind: SpanKind::ClientSync,
            start_ns: 10,
            duration_ns: 20,
        }];
        let json = spans_to_json(&spans);
        assert!(json.contains("\"kind\":\"client.sync\""), "{json}");
        assert!(json.contains("\"trace_id\":3"), "{json}");
    }
}
