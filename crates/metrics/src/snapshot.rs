//! Point-in-time registry captures and their text/JSON rendering.

use std::fmt::Write as _;

use crate::bucket_upper_bound;

/// The state of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Per-bucket sample counts (see [`crate::bucket_index`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample value, or 0 with no samples.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`): the
    /// inclusive upper edge of the first bucket whose cumulative count
    /// reaches `q * count`. Returns 0 with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(self.buckets.len().saturating_sub(1))
    }

    /// Upper bound of the highest non-empty bucket (approximate max).
    pub fn max_bound(&self) -> u64 {
        self.buckets.iter().rposition(|&n| n > 0).map(bucket_upper_bound).unwrap_or(0)
    }
}

/// A consistent-enough capture of every instrument in a [`crate::Registry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Value of a counter by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Value of a gauge by name (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Number of instruments with at least one recorded event (counters
    /// and gauges with a non-zero value, histograms with samples).
    pub fn non_zero_count(&self) -> usize {
        self.counters.iter().filter(|(_, v)| *v != 0).count()
            + self.gauges.iter().filter(|(_, v)| *v != 0).count()
            + self.histograms.iter().filter(|h| h.count() > 0).count()
    }

    /// Human-readable dump: one line per counter/gauge, and a
    /// count/mean/p50/p99/max line per histogram. Latency histograms
    /// (named `*_ns`) render their statistics in microseconds.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<44} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name:<44} {v}");
        }
        for h in &self.histograms {
            let (scale, unit) = if h.name.ends_with("_ns") { (1000.0, "us") } else { (1.0, "") };
            let fmt = |v: u64| {
                if scale == 1.0 {
                    format!("{v}")
                } else {
                    format!("{:.1}{unit}", v as f64 / scale)
                }
            };
            let _ = writeln!(
                out,
                "{:<44} count={} mean={} p50={} p99={} max<={}",
                h.name,
                h.count(),
                fmt(h.mean()),
                fmt(h.quantile(0.50)),
                fmt(h.quantile(0.99)),
                fmt(h.max_bound()),
            );
        }
        out
    }

    /// JSON rendering (hand-rolled; instrument names are code-controlled
    /// but escaped anyway). Histograms carry count/sum/mean/quantiles and
    /// the non-empty buckets as `[upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
                json_string(&h.name),
                h.count(),
                h.sum,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99),
            );
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{},{n}]", bucket_upper_bound(b));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn quantiles_from_buckets() {
        let r = Registry::new();
        let h = r.histogram("h");
        // 90 samples near 100 (bucket 7, bound 127), 10 near 5000
        // (bucket 13, bound 8191).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(5000);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.count(), 100);
        assert_eq!(hs.quantile(0.50), 127);
        assert_eq!(hs.quantile(0.99), 8191);
        assert_eq!(hs.max_bound(), 8191);
        assert_eq!(hs.mean(), (90 * 100 + 10 * 5000) / 100);
    }

    #[test]
    fn text_and_json_render() {
        let r = Registry::new();
        r.counter("ops.total").add(3);
        r.gauge("queue.depth").set(-1);
        r.histogram("rpc.latency_ns").record(1500);
        let snap = r.snapshot();

        let text = snap.to_text();
        assert!(text.contains("ops.total"), "{text}");
        assert!(text.contains("count=1"), "{text}");
        // _ns histograms render in microseconds.
        assert!(text.contains("us"), "{text}");

        let json = snap.to_json();
        assert!(json.contains("\"ops.total\":3"), "{json}");
        assert!(json.contains("\"queue.depth\":-1"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
    }

    #[test]
    fn json_escapes_names() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn non_zero_count_counts_active_instruments() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("b"); // registered but never incremented
        r.gauge("c").set(2);
        r.histogram("d").record(1);
        r.histogram("e"); // empty
        assert_eq!(r.snapshot().non_zero_count(), 3);
    }
}
