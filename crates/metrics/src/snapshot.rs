//! Point-in-time registry captures and their text/JSON rendering.

use std::fmt::Write as _;

use crate::bucket_upper_bound;
use crate::events::{events_to_json, EventRecord, EVENT_WORDS};

/// The state of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Per-bucket sample counts (see [`crate::bucket_index`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample value, or 0 with no samples.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`): the
    /// inclusive upper edge of the first bucket whose cumulative count
    /// reaches `q * count`. Returns 0 with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(self.buckets.len().saturating_sub(1))
    }

    /// Upper bound of the highest non-empty bucket (approximate max).
    pub fn max_bound(&self) -> u64 {
        self.buckets.iter().rposition(|&n| n > 0).map(bucket_upper_bound).unwrap_or(0)
    }

    /// Median estimate — [`HistogramSnapshot::quantile`] at 0.50.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Bucket-wise sum of two histograms (shorter bucket vectors are
    /// treated as zero-padded). Used by [`crate::ClusterSnapshot`] to
    /// merge per-node histograms; log₂ buckets make this exact.
    pub fn merged_with(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let len = self.buckets.len().max(other.buckets.len());
        let mut buckets = vec![0u64; len];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets.get(i).copied().unwrap_or(0)
                + other.buckets.get(i).copied().unwrap_or(0);
        }
        HistogramSnapshot {
            name: self.name.clone(),
            sum: self.sum.wrapping_add(other.sum),
            buckets,
        }
    }
}

/// A consistent-enough capture of every instrument in a [`crate::Registry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Control-plane events from the node's journal, in node-sequence
    /// order (empty when decoded from a v1 body).
    pub events: Vec<EventRecord>,
}

impl Snapshot {
    /// Value of a counter by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Value of a gauge by name (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Number of instruments with at least one recorded event (counters
    /// and gauges with a non-zero value, histograms with samples).
    pub fn non_zero_count(&self) -> usize {
        self.counters.iter().filter(|(_, v)| *v != 0).count()
            + self.gauges.iter().filter(|(_, v)| *v != 0).count()
            + self.histograms.iter().filter(|h| h.count() > 0).count()
    }

    /// Human-readable dump: one line per counter/gauge, and a
    /// count/mean/p50/p99/max line per histogram. Latency histograms
    /// (named `*_ns`) render their statistics in microseconds.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<44} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name:<44} {v}");
        }
        for h in &self.histograms {
            let (scale, unit) = if h.name.ends_with("_ns") { (1000.0, "us") } else { (1.0, "") };
            let fmt = |v: u64| {
                if scale == 1.0 {
                    format!("{v}")
                } else {
                    format!("{:.1}{unit}", v as f64 / scale)
                }
            };
            let _ = writeln!(
                out,
                "{:<44} count={} mean={} p50={} p95={} p99={} max<={}",
                h.name,
                h.count(),
                fmt(h.mean()),
                fmt(h.p50()),
                fmt(h.p95()),
                fmt(h.p99()),
                fmt(h.max_bound()),
            );
        }
        out
    }

    /// JSON rendering (hand-rolled; instrument names are code-controlled
    /// but escaped anyway). Histograms carry count/sum/mean/quantiles and
    /// the non-empty buckets as `[upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\
                 \"buckets\":[",
                json_string(&h.name),
                h.count(),
                h.sum,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
            );
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{},{n}]", bucket_upper_bound(b));
            }
            out.push_str("]}");
        }
        out.push_str("},\"events\":");
        out.push_str(&events_to_json(&self.events));
        out.push('}');
        out
    }

    /// Sums two snapshots instrument-by-instrument: counters and gauges
    /// add, histograms add bucket-wise. Instruments present in only one
    /// side pass through. Commutative and associative, which is what
    /// makes [`crate::ClusterSnapshot::merged`] order-independent.
    pub fn merged_with(&self, other: &Snapshot) -> Snapshot {
        fn merge_by_name<V: Copy, F: Fn(V, V) -> V>(
            a: &[(String, V)],
            b: &[(String, V)],
            add: F,
        ) -> Vec<(String, V)> {
            let mut out: Vec<(String, V)> = Vec::with_capacity(a.len() + b.len());
            let (mut i, mut j) = (0, 0);
            while i < a.len() || j < b.len() {
                match (a.get(i), b.get(j)) {
                    (Some((an, av)), Some((bn, bv))) => match an.cmp(bn) {
                        std::cmp::Ordering::Less => {
                            out.push((an.clone(), *av));
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            out.push((bn.clone(), *bv));
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            out.push((an.clone(), add(*av, *bv)));
                            i += 1;
                            j += 1;
                        }
                    },
                    (Some((an, av)), None) => {
                        out.push((an.clone(), *av));
                        i += 1;
                    }
                    (None, Some((bn, bv))) => {
                        out.push((bn.clone(), *bv));
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            out
        }

        let counters =
            merge_by_name(&self.counters, &other.counters, |a: u64, b| a.wrapping_add(b));
        let gauges = merge_by_name(&self.gauges, &other.gauges, |a: i64, b| a.wrapping_add(b));

        let mut histograms: Vec<HistogramSnapshot> = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.histograms.len() || j < other.histograms.len() {
            match (self.histograms.get(i), other.histograms.get(j)) {
                (Some(a), Some(b)) => match a.name.cmp(&b.name) {
                    std::cmp::Ordering::Less => {
                        histograms.push(a.clone());
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        histograms.push(b.clone());
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        histograms.push(a.merged_with(b));
                        i += 1;
                        j += 1;
                    }
                },
                (Some(a), None) => {
                    histograms.push(a.clone());
                    i += 1;
                }
                (None, Some(b)) => {
                    histograms.push(b.clone());
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }

        // Events merge as a bag union in the canonical clock-free order,
        // which keeps the pairwise merge commutative and associative.
        let mut events: Vec<EventRecord> =
            self.events.iter().chain(other.events.iter()).cloned().collect();
        events.sort_by_key(|e| e.causal_key());

        Snapshot { counters, gauges, histograms, events }
    }

    /// Encodes the snapshot into the self-describing binary form served
    /// at `/snapshot.bin` and consumed by the cluster aggregator. The
    /// format is versioned and hand-rolled so the metrics crate stays
    /// dependency-free (no JSON parser needed anywhere).
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
        out.push(SNAPSHOT_VERSION);
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (name, v) in &self.counters {
            put_str(&mut out, name);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.gauges.len() as u32).to_le_bytes());
        for (name, v) in &self.gauges {
            put_str(&mut out, name);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.histograms.len() as u32).to_le_bytes());
        for h in &self.histograms {
            put_str(&mut out, &h.name);
            out.extend_from_slice(&h.sum.to_le_bytes());
            out.extend_from_slice(&(h.buckets.len() as u32).to_le_bytes());
            for b in &h.buckets {
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        // v2: the event journal rides along as fixed-width word records.
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for e in &self.events {
            for w in e.to_words() {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Decodes [`Snapshot::to_bytes`]. Every length is bounds-checked so
    /// a truncated or corrupt body fails cleanly instead of panicking.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotDecodeError> {
        struct Cursor<'a> {
            buf: &'a [u8],
            pos: usize,
        }
        impl<'a> Cursor<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotDecodeError> {
                if self.buf.len() - self.pos < n {
                    return Err(SnapshotDecodeError::Truncated);
                }
                let out = &self.buf[self.pos..self.pos + n];
                self.pos += n;
                Ok(out)
            }
            fn u32(&mut self) -> Result<u32, SnapshotDecodeError> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn u64(&mut self) -> Result<u64, SnapshotDecodeError> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn str(&mut self) -> Result<String, SnapshotDecodeError> {
                let len = self.u32()? as usize;
                let raw = self.take(len)?;
                String::from_utf8(raw.to_vec()).map_err(|_| SnapshotDecodeError::BadString)
            }
        }

        let mut c = Cursor { buf: bytes, pos: 0 };
        if c.u32()? != SNAPSHOT_MAGIC {
            return Err(SnapshotDecodeError::BadMagic);
        }
        let version = c.take(1)?[0];
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(SnapshotDecodeError::BadVersion);
        }

        let n = c.u32()? as usize;
        let mut counters = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let name = c.str()?;
            counters.push((name, c.u64()?));
        }
        let n = c.u32()? as usize;
        let mut gauges = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let name = c.str()?;
            gauges.push((name, c.u64()? as i64));
        }
        let n = c.u32()? as usize;
        let mut histograms = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let name = c.str()?;
            let sum = c.u64()?;
            let blen = c.u32()? as usize;
            if blen > 1024 {
                return Err(SnapshotDecodeError::Truncated);
            }
            let mut buckets = Vec::with_capacity(blen);
            for _ in 0..blen {
                buckets.push(c.u64()?);
            }
            histograms.push(HistogramSnapshot { name, sum, buckets });
        }
        // v1 bodies (from older nodes) simply have no event section.
        let mut events = Vec::new();
        if version >= 2 {
            let n = c.u32()? as usize;
            events.reserve(n.min(4096));
            for _ in 0..n {
                let mut words = [0u64; EVENT_WORDS];
                for w in words.iter_mut() {
                    *w = c.u64()?;
                }
                events.push(EventRecord::from_words(&words));
            }
        }
        Ok(Snapshot { counters, gauges, histograms, events })
    }
}

const SNAPSHOT_MAGIC: u32 = 0x544D_5301; // "TMS" + format version tag
const SNAPSHOT_VERSION: u8 = 2;

/// Why [`Snapshot::from_bytes`] rejected a body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotDecodeError {
    /// Leading magic did not match.
    BadMagic,
    /// Unknown format version.
    BadVersion,
    /// Body ended before a declared length was satisfied.
    Truncated,
    /// A name was not valid UTF-8.
    BadString,
}

impl std::fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotDecodeError::BadMagic => write!(f, "snapshot: bad magic"),
            SnapshotDecodeError::BadVersion => write!(f, "snapshot: unsupported version"),
            SnapshotDecodeError::Truncated => write!(f, "snapshot: truncated body"),
            SnapshotDecodeError::BadString => write!(f, "snapshot: non-UTF-8 name"),
        }
    }
}

impl std::error::Error for SnapshotDecodeError {}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn quantiles_from_buckets() {
        let r = Registry::new();
        let h = r.histogram("h");
        // 90 samples near 100 (bucket 7, bound 127), 10 near 5000
        // (bucket 13, bound 8191).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(5000);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.count(), 100);
        assert_eq!(hs.quantile(0.50), 127);
        assert_eq!(hs.quantile(0.99), 8191);
        assert_eq!(hs.max_bound(), 8191);
        assert_eq!(hs.mean(), (90 * 100 + 10 * 5000) / 100);
    }

    #[test]
    fn text_and_json_render() {
        let r = Registry::new();
        r.counter("ops.total").add(3);
        r.gauge("queue.depth").set(-1);
        r.histogram("rpc.latency_ns").record(1500);
        let snap = r.snapshot();

        let text = snap.to_text();
        assert!(text.contains("ops.total"), "{text}");
        assert!(text.contains("count=1"), "{text}");
        // _ns histograms render in microseconds.
        assert!(text.contains("us"), "{text}");

        let json = snap.to_json();
        assert!(json.contains("\"ops.total\":3"), "{json}");
        assert!(json.contains("\"queue.depth\":-1"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
    }

    #[test]
    fn json_escapes_names() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn named_quantiles_match_quantile() {
        let r = Registry::new();
        let h = r.histogram("h");
        for v in 0..100u64 {
            h.record(v * 10);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.p50(), hs.quantile(0.50));
        assert_eq!(hs.p95(), hs.quantile(0.95));
        assert_eq!(hs.p99(), hs.quantile(0.99));
        assert!(hs.p50() <= hs.p95() && hs.p95() <= hs.p99());
    }

    #[test]
    fn quantiles_at_edge_buckets() {
        // Empty histogram: everything is 0.
        let empty = HistogramSnapshot { name: "e".into(), sum: 0, buckets: vec![0; 65] };
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p95(), 0);
        assert_eq!(empty.p99(), 0);

        // All samples in the zero bucket (bucket 0, bound 0).
        let r = Registry::new();
        let h = r.histogram("zeros");
        for _ in 0..10 {
            h.record(0);
        }
        let snap = r.snapshot();
        let zeros = snap.histogram("zeros").unwrap();
        assert_eq!(zeros.p50(), 0);
        assert_eq!(zeros.p99(), 0);

        // A sample in the top bucket (u64::MAX) dominates high quantiles.
        let top = r.histogram("top");
        top.record(u64::MAX);
        top.record(1);
        let snap = r.snapshot();
        let ts = snap.histogram("top").unwrap();
        assert_eq!(ts.p50(), 1);
        assert_eq!(ts.p99(), u64::MAX);
        assert_eq!(ts.max_bound(), u64::MAX);

        // q clamping: out-of-range requests behave as 0.0 / 1.0.
        assert_eq!(ts.quantile(-1.0), 1);
        assert_eq!(ts.quantile(2.0), u64::MAX);
    }

    #[test]
    fn p95_renders_in_text_and_json() {
        let r = Registry::new();
        r.histogram("lat_ns").record(1000);
        let snap = r.snapshot();
        assert!(snap.to_text().contains("p95="), "{}", snap.to_text());
        assert!(snap.to_json().contains("\"p95\":"), "{}", snap.to_json());
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let r = Registry::new();
        r.counter("ops.total").add(7);
        r.gauge("depth").set(-3);
        let h = r.histogram("lat_ns");
        h.record(0);
        h.record(12345);
        h.record(u64::MAX);
        r.events().emit(crate::EventKind::Sealed, 3, 1, 99);
        r.events().emit(crate::EventKind::HoleFilled, 3, 0, 17);
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 2);
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn binary_decode_accepts_v1_bodies_without_events() {
        let r = Registry::new();
        r.counter("ops.total").add(7);
        let snap = r.snapshot();
        // A v1 body is the v2 encoding minus the trailing event section,
        // with the version byte set back to 1.
        let mut bytes = snap.to_bytes();
        bytes.truncate(bytes.len() - 4); // empty event section = one u32 count
        bytes[4] = 1;
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert!(back.events.is_empty());
        assert_eq!(back.counter("ops.total"), 7);
    }

    #[test]
    fn binary_decode_rejects_garbage() {
        assert_eq!(Snapshot::from_bytes(&[]), Err(SnapshotDecodeError::Truncated));
        assert_eq!(Snapshot::from_bytes(&[0xFF; 16]), Err(SnapshotDecodeError::BadMagic));
        let mut bytes = Snapshot::default().to_bytes();
        bytes[4] = 99; // version byte
        assert_eq!(Snapshot::from_bytes(&bytes), Err(SnapshotDecodeError::BadVersion));
        let good = {
            let r = Registry::new();
            r.counter("a").inc();
            r.snapshot().to_bytes()
        };
        // Any prefix truncation fails cleanly.
        for cut in 0..good.len() {
            assert!(Snapshot::from_bytes(&good[..cut]).is_err(), "cut={cut}");
        }
        assert!(Snapshot::from_bytes(&good).is_ok());
    }

    #[test]
    fn merged_with_passes_through_disjoint_instruments() {
        let a = {
            let r = Registry::new();
            r.counter("only.a").add(1);
            r.snapshot()
        };
        let b = {
            let r = Registry::new();
            r.counter("only.b").add(2);
            r.snapshot()
        };
        let m = a.merged_with(&b);
        assert_eq!(m.counter("only.a"), 1);
        assert_eq!(m.counter("only.b"), 2);
        // Names stay sorted so repeated merges stay canonical.
        let names: Vec<&str> = m.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn non_zero_count_counts_active_instruments() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("b"); // registered but never incremented
        r.gauge("c").set(2);
        r.histogram("d").record(1);
        r.histogram("e"); // empty
        assert_eq!(r.snapshot().non_zero_count(), 3);
    }
}
