//! # tango-metrics
//!
//! A dependency-free, lock-free metrics registry for the Tango/CORFU stack.
//!
//! Three instrument kinds:
//!
//! - [`Counter`] — a monotonically increasing `u64` (one relaxed `fetch_add`
//!   per increment).
//! - [`Gauge`] — a signed point-in-time value (`set`/`add`/`sub`).
//! - [`Histogram`] — a log₂-bucketed value distribution. Recording a sample
//!   touches one bucket with a single relaxed `fetch_add` (plus one more for
//!   the running sum so snapshots can report a mean). Latency helpers record
//!   elapsed nanoseconds.
//!
//! Instruments are cheap handles (an `Option<Arc<..>>`); cloning one or
//! cloning the [`Registry`] shares the underlying atomics. A registry created
//! with [`Registry::disabled`] hands out handles whose inner pointer is
//! `None`, so every record call reduces to one branch — cheap enough that
//! instrumentation can stay unconditionally compiled in.
//!
//! [`Registry::snapshot`] reads every atomic with relaxed loads while writers
//! keep going: the result is consistent-enough for monitoring (each value is
//! individually atomic; cross-metric skew is bounded by the scan time).
//!
//! ```
//! use tango_metrics::Registry;
//!
//! let registry = Registry::new();
//! let appends = registry.counter("corfu.client.appends");
//! let latency = registry.histogram("corfu.client.append_latency_ns");
//!
//! appends.inc();
//! latency.record(1_250);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("corfu.client.appends"), 1);
//! println!("{}", snap.to_text());
//! ```

mod cluster;
pub mod events;
pub mod health;
mod ring;
mod snapshot;
pub mod trace;

pub use cluster::{ClusterSnapshot, TimelineEntry};
pub use events::{events_to_json, EventKind, EventRecord, Events};
pub use health::{ClusterHealth, HealthPolicy, HealthReason, HealthReport, HealthStatus};
pub use snapshot::{HistogramSnapshot, Snapshot, SnapshotDecodeError};
pub use trace::{spans_to_json, Span, SpanKind, SpanRecord, TraceConfig, TraceContext, Tracer};

/// Scopes an instrument name to a log (shard): log 0 keeps the bare name
/// so single-log clusters stay byte-compatible with historical output,
/// other logs get a `.log{N}` suffix.
///
/// ```
/// assert_eq!(tango_metrics::log_scoped("corfu.seq.tail", 0), "corfu.seq.tail");
/// assert_eq!(tango_metrics::log_scoped("corfu.seq.tail", 2), "corfu.seq.tail.log2");
/// ```
pub fn log_scoped(name: &str, log: u64) -> String {
    if log == 0 {
        name.to_string()
    } else {
        format!("{name}.log{log}")
    }
}

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of log₂ buckets: bucket 0 holds zeros, bucket `i` (1..=64) holds
/// values in `[2^(i-1), 2^i - 1]`, so the full `u64` range is covered.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Returns the bucket index for a sample value.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (0 for the zero bucket).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self { buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS], sum: AtomicU64::new(0) }
    }
}

/// A monotonically increasing counter. Clones share the same cell.
#[derive(Clone, Default)]
pub struct Counter {
    core: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A permanently disabled counter (all operations are no-ops).
    pub fn disabled() -> Self {
        Self { core: None }
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.core {
            core.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A signed point-in-time value. Clones share the same cell.
#[derive(Clone, Default)]
pub struct Gauge {
    core: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A permanently disabled gauge (all operations are no-ops).
    pub fn disabled() -> Self {
        Self { core: None }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(core) = &self.core {
            core.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(core) = &self.core {
            core.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.core.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A log₂-bucketed histogram. Clones share the same buckets.
#[derive(Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A permanently disabled histogram (all operations are no-ops).
    pub fn disabled() -> Self {
        Self { core: None }
    }

    /// True if recording actually lands anywhere. Lets callers skip
    /// sample preparation (e.g. `Instant::now`) when metrics are off.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.core {
            core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if self.is_enabled() {
            self.record(d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Starts a latency measurement; call [`Timer::stop`] (or drop the
    /// timer) to record. When the histogram is disabled no clock is read.
    #[inline]
    pub fn start(&self) -> Timer {
        Timer { target: self.core.as_ref().map(|c| (Arc::clone(c), Instant::now())) }
    }

    /// Starts a timer on the events `sampler` selects; the rest get an
    /// inert timer and pay neither the clock read nor the record. Use on
    /// hot paths where two `Instant::now` calls per event would be a
    /// measurable tax: the histogram's shape stays representative while
    /// its `count` becomes a 1-in-N sample (keep an exact [`Counter`]
    /// alongside when totals matter).
    #[inline]
    pub fn start_sampled(&self, sampler: &Sampler) -> Timer {
        if self.is_enabled() && sampler.hit() {
            self.start()
        } else {
            Timer { target: None }
        }
    }

    /// Times a closure, recording its wall-clock duration in nanoseconds.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let timer = self.start();
        let out = f();
        timer.stop();
        out
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum())
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }
}

/// In-flight latency measurement from [`Histogram::start`].
///
/// Records on [`Timer::stop`] or on drop, whichever comes first.
pub struct Timer {
    target: Option<(Arc<HistogramCore>, Instant)>,
}

impl Timer {
    /// A timer that records nothing. For callers that make their own
    /// sampling decision (e.g. to share one decision between a timer and
    /// a trace span) and need an inert placeholder on the miss path.
    pub fn inert() -> Timer {
        Timer { target: None }
    }

    /// Stops the timer and records the elapsed nanoseconds.
    #[inline]
    pub fn stop(mut self) {
        self.observe();
    }

    /// Discards the measurement without recording (e.g. on error paths
    /// that should not pollute a success-latency histogram).
    #[inline]
    pub fn discard(mut self) {
        self.target = None;
    }

    fn observe(&mut self) {
        if let Some((core, started)) = self.target.take() {
            let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            core.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(ns, Ordering::Relaxed);
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.observe();
    }
}

/// A 1-in-2ᵏ gate for [`Histogram::start_sampled`]: one relaxed
/// `fetch_add` per event, hit on every 2ᵏ-th. Clones share the tick, so
/// one sampler can pace several histograms. The first event always hits,
/// which keeps single-shot tests deterministic.
#[derive(Clone)]
pub struct Sampler {
    mask: u64,
    tick: Arc<AtomicU64>,
}

impl Sampler {
    /// Samples one event in `period`, which must be a power of two.
    pub fn one_in(period: u64) -> Self {
        assert!(period.is_power_of_two(), "sampling period must be a power of two");
        Self { mask: period - 1, tick: Arc::new(AtomicU64::new(0)) }
    }

    /// True for the selected 1-in-N events.
    #[inline]
    pub fn hit(&self) -> bool {
        self.tick.fetch_add(1, Ordering::Relaxed) & self.mask == 0
    }
}

impl Default for Sampler {
    /// 1-in-16: cuts timer clock reads by 16x while a few hundred events
    /// still fill out the histogram.
    fn default() -> Self {
        Self::one_in(16)
    }
}

struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    tracer: Arc<trace::TracerInner>,
    events: Arc<events::EventJournalInner>,
}

/// A named collection of instruments.
///
/// Cloning is cheap and shares all instruments. Requesting the same name
/// twice returns handles over the same cell, so independently constructed
/// components can contribute to one metric.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// Creates an enabled registry with the default [`TraceConfig`].
    pub fn new() -> Self {
        Self::with_trace(TraceConfig::default())
    }

    /// Creates an enabled registry with an explicit trace configuration
    /// (sampling period, slow-request threshold, ring capacities).
    pub fn with_trace(cfg: TraceConfig) -> Self {
        Self {
            inner: Some(Arc::new(RegistryInner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                tracer: Arc::new(trace::TracerInner::new(&cfg)),
                events: Arc::new(events::EventJournalInner::new(cfg.event_capacity)),
            })),
        }
    }

    /// Creates a disabled registry: every instrument it hands out is a
    /// no-op handle and [`Registry::snapshot`] is always empty.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// True unless constructed with [`Registry::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock_map<K: Ord, V>(
        map: &Mutex<BTreeMap<K, V>>,
    ) -> std::sync::MutexGuard<'_, BTreeMap<K, V>> {
        map.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the counter registered under `name`, creating it if needed.
    pub fn counter(&self, name: &str) -> Counter {
        let core = self.inner.as_ref().map(|inner| {
            let mut map = Self::lock_map(&inner.counters);
            Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicU64::new(0))))
        });
        Counter { core }
    }

    /// Returns the gauge registered under `name`, creating it if needed.
    pub fn gauge(&self, name: &str) -> Gauge {
        let core = self.inner.as_ref().map(|inner| {
            let mut map = Self::lock_map(&inner.gauges);
            Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicI64::new(0))))
        });
        Gauge { core }
    }

    /// Returns the histogram registered under `name`, creating it if needed.
    pub fn histogram(&self, name: &str) -> Histogram {
        let core = self.inner.as_ref().map(|inner| {
            let mut map = Self::lock_map(&inner.histograms);
            Arc::clone(
                map.entry(name.to_string()).or_insert_with(|| Arc::new(HistogramCore::new())),
            )
        });
        Histogram { core }
    }

    /// The tracer recording spans into this registry's rings. Handles
    /// from a disabled registry are inert.
    pub fn tracer(&self) -> Tracer {
        Tracer { inner: self.inner.as_ref().map(|i| Arc::clone(&i.tracer)) }
    }

    /// All stable spans in the span ring, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.tracer().spans()
    }

    /// All stable spans in the slow-request ring, oldest first.
    pub fn slow_spans(&self) -> Vec<SpanRecord> {
        self.tracer().slow_spans()
    }

    /// The control-plane event journal of this registry. Handles from a
    /// disabled registry are inert.
    pub fn events(&self) -> Events {
        Events { inner: self.inner.as_ref().map(|i| Arc::clone(&i.events)) }
    }

    /// All stable events currently in the journal, in node-sequence
    /// order.
    pub fn event_records(&self) -> Vec<EventRecord> {
        self.events().records()
    }

    /// Captures the current value of every instrument without blocking
    /// writers (individual values are atomic; the set is scanned under
    /// the registration lock, which records never take).
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else { return Snapshot::default() };
        let mut counters: Vec<(String, u64)> = Self::lock_map(&inner.counters)
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        // Trace bookkeeping surfaces as synthetic counters so it rides
        // along in every snapshot/merge/scrape without extra plumbing.
        counters.push((
            "trace.slow_requests".to_string(),
            inner.tracer.slow_requests.load(Ordering::Relaxed),
        ));
        counters.push((
            "trace.spans_recorded".to_string(),
            inner.tracer.spans_recorded.load(Ordering::Relaxed),
        ));
        counters.push((
            "events.recorded".to_string(),
            inner.events.events_recorded.load(Ordering::Relaxed),
        ));
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let gauges = Self::lock_map(&inner.gauges)
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let histograms = Self::lock_map(&inner.histograms)
            .iter()
            .map(|(name, core)| {
                let buckets: Vec<u64> =
                    core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
                HistogramSnapshot {
                    name: name.clone(),
                    sum: core.sum.load(Ordering::Relaxed),
                    buckets,
                }
            })
            .collect();
        Snapshot { counters, gauges, histograms, events: inner.events.records() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        let c = r.counter("ops");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same cell.
        assert_eq!(r.counter("ops").get(), 5);

        let g = r.gauge("depth");
        g.set(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);

        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [0, 1, 2, 3, 900, 1100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 2006);
    }

    #[test]
    fn timer_records_on_stop_and_drop() {
        let r = Registry::new();
        let h = r.histogram("lat");
        h.start().stop();
        {
            let _t = h.start();
        }
        h.start().discard();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("ops");
        c.add(100);
        assert_eq!(c.get(), 0);
        let h = r.histogram("lat");
        assert!(!h.is_enabled());
        h.record(5);
        h.time(|| ());
        assert_eq!(h.count(), 0);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn snapshot_reflects_all_kinds() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.gauge("b").set(-3);
        r.histogram("c").record(7);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), 2);
        assert_eq!(snap.gauge("b"), -3);
        let h = snap.histogram("c").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum, 7);
    }
}
