//! Cluster-wide metric aggregation: per-node snapshots keyed by node
//! name, plus an order-independent merged view.
//!
//! The aggregator is deliberately a *keyed map*, not a running sum:
//! inserting the same node twice replaces its snapshot (scrapes are
//! idempotent), and merging two aggregators is a right-biased union
//! (associative), so any fetch/merge topology — one scraper, a tree of
//! scrapers, retries — converges to the same view.

use std::collections::BTreeMap;

use crate::snapshot::json_string;
use crate::{EventRecord, Snapshot};

/// One event in the merged cluster timeline: a node name plus the event
/// it journalled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// The node whose journal recorded the event.
    pub node: String,
    /// The recorded event.
    pub event: EventRecord,
}

impl TimelineEntry {
    /// Renders the causal fields only — epoch, node, node sequence,
    /// kind, log, detail. Timestamps and trace ids are deliberately
    /// excluded so the rendering of a seeded chaos schedule is
    /// byte-identical across replays.
    pub fn to_causal_text(&self) -> String {
        format!(
            "epoch={} node={} seq={} kind={} log={} detail={}",
            self.event.epoch,
            self.node,
            self.event.node_seq,
            self.event.kind.name(),
            self.event.log,
            self.event.detail,
        )
    }
}

/// Per-node snapshots plus a merged cluster view.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterSnapshot {
    nodes: BTreeMap<String, Snapshot>,
}

impl ClusterSnapshot {
    /// An empty aggregation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) one node's snapshot. Re-inserting the same
    /// node is idempotent — the previous scrape is replaced, never
    /// double-counted.
    pub fn insert(&mut self, node: impl Into<String>, snapshot: Snapshot) {
        self.nodes.insert(node.into(), snapshot);
    }

    /// Right-biased union: `other`'s snapshot wins for nodes present in
    /// both. Associative, and idempotent when merging the same data.
    pub fn merge(&mut self, other: &ClusterSnapshot) {
        for (node, snap) in &other.nodes {
            self.nodes.insert(node.clone(), snap.clone());
        }
    }

    /// One node's snapshot.
    pub fn node(&self, name: &str) -> Option<&Snapshot> {
        self.nodes.get(name)
    }

    /// Iterates `(node name, snapshot)` in name order.
    pub fn nodes(&self) -> impl Iterator<Item = (&str, &Snapshot)> {
        self.nodes.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Number of nodes aggregated.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True with no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The cluster-wide view: every node's instruments summed by name
    /// (counters/gauges add, histograms add bucket-wise). Because the
    /// per-pair sum is commutative and associative, the result does not
    /// depend on node order.
    pub fn merged(&self) -> Snapshot {
        self.nodes.values().fold(Snapshot::default(), |acc, s| acc.merged_with(s))
    }

    /// The merged cluster timeline: every node's journalled events,
    /// causally ordered by `(epoch, node, node_seq)`. The order uses no
    /// clocks — a node's own events keep their emission order (the node
    /// sequence), cross-node events are grouped by the protocol epoch
    /// they happened under — so the timeline of a seeded chaos schedule
    /// is identical across replays. Because the aggregator is a keyed
    /// map, building the timeline is as idempotent and associative as
    /// [`ClusterSnapshot::merge`] itself.
    pub fn timeline(&self) -> Vec<TimelineEntry> {
        let mut out: Vec<TimelineEntry> = self
            .nodes
            .iter()
            .flat_map(|(node, snap)| {
                snap.events
                    .iter()
                    .map(move |event| TimelineEntry { node: node.clone(), event: event.clone() })
            })
            .collect();
        out.sort_by(|a, b| {
            (a.event.epoch, &a.node, a.event.node_seq).cmp(&(
                b.event.epoch,
                &b.node,
                b.event.node_seq,
            ))
        });
        out
    }

    /// The replay-stable text rendering of [`ClusterSnapshot::timeline`]
    /// (one [`TimelineEntry::to_causal_text`] line per event).
    pub fn timeline_text(&self) -> String {
        let mut out = String::new();
        for entry in self.timeline() {
            out.push_str(&entry.to_causal_text());
            out.push('\n');
        }
        out
    }

    /// JSON rendering: the merged view plus the per-node breakdown.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"merged\":");
        out.push_str(&self.merged().to_json());
        out.push_str(",\"nodes\":{");
        for (i, (name, snap)) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push(':');
            out.push_str(&snap.to_json());
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn snap(counter: u64, hist_value: u64) -> Snapshot {
        let r = Registry::new();
        r.counter("ops").add(counter);
        r.gauge("depth").add(counter as i64);
        r.histogram("lat_ns").record(hist_value);
        r.snapshot()
    }

    #[test]
    fn merged_sums_counters_gauges_and_histogram_buckets() {
        let mut cs = ClusterSnapshot::new();
        cs.insert("a", snap(2, 100));
        cs.insert("b", snap(3, 100_000));
        let merged = cs.merged();
        assert_eq!(merged.counter("ops"), 5);
        assert_eq!(merged.gauge("depth"), 5);
        let h = merged.histogram("lat_ns").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum, 100_100);
        // Both original buckets survive the merge.
        assert_eq!(h.buckets[crate::bucket_index(100)], 1);
        assert_eq!(h.buckets[crate::bucket_index(100_000)], 1);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut cs = ClusterSnapshot::new();
        cs.insert("a", snap(2, 100));
        cs.insert("a", snap(2, 100));
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.merged().counter("ops"), 2);
    }

    #[test]
    fn merge_is_associative_and_idempotent() {
        let parts: Vec<ClusterSnapshot> = (0..3)
            .map(|i| {
                let mut cs = ClusterSnapshot::new();
                cs.insert(format!("node-{i}"), snap(i + 1, 10 << i));
                cs
            })
            .collect();

        // (a ∪ b) ∪ c
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        // a ∪ (b ∪ c)
        let mut right_tail = parts[1].clone();
        right_tail.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&right_tail);
        assert_eq!(left, right);
        assert_eq!(left.merged(), right.merged());

        // x ∪ x = x
        let mut twice = left.clone();
        twice.merge(&left);
        assert_eq!(twice, left);
    }

    #[test]
    fn timeline_orders_by_epoch_then_node_then_sequence() {
        use crate::EventKind;
        let seq0 = {
            let r = Registry::new();
            r.events().emit(EventKind::Sealed, 2, 0, 10);
            r.events().emit(EventKind::StreamAdopted, 3, 0, 5);
            r.snapshot()
        };
        let client = {
            let r = Registry::new();
            r.events().emit(EventKind::HoleFilled, 2, 0, 4);
            r.events().emit(EventKind::ProjectionInstalled, 3, 0, 1);
            r.snapshot()
        };
        let mut cs = ClusterSnapshot::new();
        cs.insert("seq-0", seq0);
        cs.insert("clients", client);

        let lines: Vec<String> = cs.timeline().iter().map(TimelineEntry::to_causal_text).collect();
        assert_eq!(
            lines,
            vec![
                "epoch=2 node=clients seq=1 kind=hole_filled log=0 detail=4",
                "epoch=2 node=seq-0 seq=1 kind=sealed log=0 detail=10",
                "epoch=3 node=clients seq=2 kind=projection_installed log=0 detail=1",
                "epoch=3 node=seq-0 seq=2 kind=stream_adopted log=0 detail=5",
            ]
        );
        assert_eq!(cs.timeline_text().lines().count(), 4);

        // Rendering is insensitive to insertion order (keyed map) and to
        // re-insertion of the same scrape.
        let mut again = ClusterSnapshot::new();
        again.insert("clients", cs.node("clients").unwrap().clone());
        again.insert("seq-0", cs.node("seq-0").unwrap().clone());
        again.insert("clients", cs.node("clients").unwrap().clone());
        assert_eq!(again.timeline_text(), cs.timeline_text());
    }

    #[test]
    fn json_has_merged_and_per_node_sections() {
        let mut cs = ClusterSnapshot::new();
        cs.insert("storage-0", snap(1, 10));
        let json = cs.to_json();
        assert!(json.starts_with("{\"merged\":{"), "{json}");
        assert!(json.contains("\"storage-0\""), "{json}");
        assert!(json.contains("\"ops\":1"), "{json}");
    }
}
