//! The flight recorder: a lock-free per-node journal of typed
//! control-plane events.
//!
//! Tango's correctness story rests on a small set of control-plane
//! transitions — seals, projection installs, shard remaps, hole/junk
//! fills, quorum repairs, replica replacements. The journal records each
//! as a fixed-width [`EventRecord`] in a bounded seqlock ring (same
//! discipline as the span ring, see [`crate::ring`]), so emitting an
//! event costs a handful of relaxed atomics and never blocks or
//! allocates.
//!
//! Every record carries a monotonic per-node sequence number, wall and
//! monotonic timestamps, the protocol epoch, the log/shard id, a
//! kind-specific detail word, and the active trace id (0 when the
//! emitting request was not sampled) so events correlate with the span
//! rings. Cross-node ordering is by `(epoch, node, node_seq)` — see
//! [`crate::ClusterSnapshot::timeline`] — which is replay-stable because
//! it uses no clocks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::ring::SeqlockRing;

/// What a control-plane event records. Closed enum so an [`EventRecord`]
/// stays eight plain `u64`s in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// A sequencer or storage set was sealed at `epoch`; `detail` is the
    /// sealed tail where known.
    Sealed = 0,
    /// A new projection (layout) won the epoch CAS; `detail` is the
    /// installing node's id where known.
    ProjectionInstalled = 1,
    /// A stream's home shard changed; `detail` is the stream id.
    ShardRemapped = 2,
    /// A sequencer adopted a remapped stream's window; `detail` is the
    /// stream id.
    StreamAdopted = 3,
    /// A client filled a hole by copying the winning value forward;
    /// `detail` is the offset.
    HoleFilled = 4,
    /// A client forced junk into an unwritten offset; `detail` is the
    /// offset.
    JunkForced = 5,
    /// A cross-log multiappend commit/abort decision at the home anchor;
    /// `detail` is 1 for commit, 0 for abort.
    CrossLogDecision = 6,
    /// A metalog read rolled a half-written round forward; `detail` is
    /// the repaired position.
    QuorumRepair = 7,
    /// A failed sequencer or storage replica was replaced; `detail` is
    /// the replacement node's id.
    ReplicaReplaced = 8,
    /// The transport dropped an inbound connection (over capacity or
    /// registration failure); `detail` is the live-connection count.
    ConnDropped = 9,
    /// Anything else.
    Other = 10,
    /// A storage node reclaimed whole cold segments below the prefix-trim
    /// horizon; `detail` is the number of segments released.
    SegmentReclaimed = 11,
    /// A storage node migrated hot pages into the cold tier; `detail` is
    /// the number of pages moved.
    ColdMigration = 12,
}

impl EventKind {
    /// Stable display name (used by the JSON and timeline renderings).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Sealed => "sealed",
            EventKind::ProjectionInstalled => "projection_installed",
            EventKind::ShardRemapped => "shard_remapped",
            EventKind::StreamAdopted => "stream_adopted",
            EventKind::HoleFilled => "hole_filled",
            EventKind::JunkForced => "junk_forced",
            EventKind::CrossLogDecision => "cross_log_decision",
            EventKind::QuorumRepair => "quorum_repair",
            EventKind::ReplicaReplaced => "replica_replaced",
            EventKind::ConnDropped => "conn_dropped",
            EventKind::Other => "other",
            EventKind::SegmentReclaimed => "segment_reclaimed",
            EventKind::ColdMigration => "cold_migration",
        }
    }

    pub(crate) fn from_u64(v: u64) -> Self {
        match v {
            0 => EventKind::Sealed,
            1 => EventKind::ProjectionInstalled,
            2 => EventKind::ShardRemapped,
            3 => EventKind::StreamAdopted,
            4 => EventKind::HoleFilled,
            5 => EventKind::JunkForced,
            6 => EventKind::CrossLogDecision,
            7 => EventKind::QuorumRepair,
            8 => EventKind::ReplicaReplaced,
            9 => EventKind::ConnDropped,
            11 => EventKind::SegmentReclaimed,
            12 => EventKind::ColdMigration,
            _ => EventKind::Other,
        }
    }
}

/// One recorded control-plane event as read back from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotonic 1-based sequence number within the emitting node. The
    /// causal order of a node's own events, independent of clocks.
    pub node_seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Wall-clock microseconds since the UNIX epoch at emit time. For
    /// humans only — replay-stable orderings never consult it.
    pub wall_us: u64,
    /// Nanoseconds since the registry was created. Only comparable
    /// within one process.
    pub mono_ns: u64,
    /// The protocol epoch the event happened under.
    pub epoch: u64,
    /// The log (shard) the event concerns, or 0 when log-independent.
    pub log: u64,
    /// Kind-specific payload (offset, stream id, node id, …).
    pub detail: u64,
    /// Trace id of the request that emitted the event, 0 when unsampled
    /// or emitted outside any request.
    pub trace_id: u64,
}

impl EventRecord {
    /// The clock-free total order used for canonical merges:
    /// `(epoch, node_seq, kind, log, detail)` with the timestamps and
    /// trace id as final tie-breakers.
    pub(crate) fn causal_key(&self) -> (u64, u64, EventKind, u64, u64, u64, u64, u64) {
        (
            self.epoch,
            self.node_seq,
            self.kind,
            self.log,
            self.detail,
            self.wall_us,
            self.mono_ns,
            self.trace_id,
        )
    }
}

pub(crate) const EVENT_WORDS: usize = 8;

impl EventRecord {
    pub(crate) fn to_words(&self) -> [u64; EVENT_WORDS] {
        [
            self.node_seq,
            self.kind as u64,
            self.wall_us,
            self.mono_ns,
            self.epoch,
            self.log,
            self.detail,
            self.trace_id,
        ]
    }

    pub(crate) fn from_words(words: &[u64; EVENT_WORDS]) -> Self {
        Self {
            node_seq: words[0],
            kind: EventKind::from_u64(words[1]),
            wall_us: words[2],
            mono_ns: words[3],
            epoch: words[4],
            log: words[5],
            detail: words[6],
            trace_id: words[7],
        }
    }
}

pub(crate) struct EventJournalInner {
    ring: SeqlockRing<EVENT_WORDS>,
    node_seq: AtomicU64,
    pub(crate) events_recorded: AtomicU64,
    epoch: Instant,
}

impl EventJournalInner {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            ring: SeqlockRing::new(capacity),
            node_seq: AtomicU64::new(0),
            events_recorded: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    pub(crate) fn records(&self) -> Vec<EventRecord> {
        let mut out: Vec<EventRecord> =
            self.ring.snapshot().iter().map(EventRecord::from_words).collect();
        out.sort_by_key(|e| e.node_seq);
        out
    }
}

/// Handle for emitting events into one registry's journal. Cheap to
/// clone; a handle from a disabled registry is inert.
#[derive(Clone, Default)]
pub struct Events {
    pub(crate) inner: Option<Arc<EventJournalInner>>,
}

impl Events {
    /// A permanently disabled journal handle (all emits are no-ops).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// True if emitted events can be recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event. The node sequence number is assigned here; the
    /// trace id is taken from the current thread's trace context.
    pub fn emit(&self, kind: EventKind, epoch: u64, log: u64, detail: u64) {
        let Some(inner) = &self.inner else { return };
        let node_seq = inner.node_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let wall_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let mono_ns = inner.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let trace_id = crate::trace::current().map(|c| c.trace_id).unwrap_or(0);
        let rec = EventRecord { node_seq, kind, wall_us, mono_ns, epoch, log, detail, trace_id };
        inner.ring.push(&rec.to_words());
        inner.events_recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// All stable events currently in the journal, in node-sequence order.
    pub fn records(&self) -> Vec<EventRecord> {
        self.inner.as_ref().map(|i| i.records()).unwrap_or_default()
    }
}

/// Renders events as a JSON array (hand-rolled like the snapshot JSON).
pub fn events_to_json(events: &[EventRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"node_seq\":{},\"kind\":\"{}\",\"wall_us\":{},\"mono_ns\":{},\
             \"epoch\":{},\"log\":{},\"detail\":{},\"trace_id\":{}}}",
            e.node_seq,
            e.kind.name(),
            e.wall_us,
            e.mono_ns,
            e.epoch,
            e.log,
            e.detail,
            e.trace_id,
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn emit_assigns_monotonic_node_sequence() {
        let r = Registry::new();
        let ev = r.events();
        assert!(ev.is_enabled());
        ev.emit(EventKind::Sealed, 3, 0, 42);
        ev.emit(EventKind::ProjectionInstalled, 4, 0, 7);
        let records = ev.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].node_seq, 1);
        assert_eq!(records[1].node_seq, 2);
        assert_eq!(records[0].kind, EventKind::Sealed);
        assert_eq!(records[0].epoch, 3);
        assert_eq!(records[0].detail, 42);
        assert_eq!(records[1].kind, EventKind::ProjectionInstalled);
    }

    #[test]
    fn disabled_journal_is_inert() {
        let ev = Events::disabled();
        ev.emit(EventKind::Sealed, 1, 0, 0);
        assert!(ev.records().is_empty());
        let r = Registry::disabled();
        let ev = r.events();
        assert!(!ev.is_enabled());
        ev.emit(EventKind::Sealed, 1, 0, 0);
        assert!(ev.records().is_empty());
    }

    #[test]
    fn journal_wraps_and_keeps_latest() {
        let r = Registry::with_trace(crate::TraceConfig {
            event_capacity: 4,
            ..crate::TraceConfig::default()
        });
        let ev = r.events();
        for i in 0..10u64 {
            ev.emit(EventKind::HoleFilled, 1, 0, i);
        }
        let records = ev.records();
        assert_eq!(records.len(), 4);
        let seqs: Vec<u64> = records.iter().map(|e| e.node_seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
        // Sequence numbers keep counting even when the ring evicts.
        assert_eq!(r.snapshot().counter("events.recorded"), 10);
    }

    #[test]
    fn emit_captures_current_trace_id() {
        let r = Registry::new();
        let t = r.tracer();
        let ev = r.events();
        ev.emit(EventKind::Sealed, 1, 0, 0);
        let root = t.root_forced(crate::SpanKind::ClientAppend);
        let trace_id = root.context().unwrap().trace_id;
        ev.emit(EventKind::HoleFilled, 1, 0, 5);
        root.finish();
        let records = ev.records();
        assert_eq!(records[0].trace_id, 0);
        assert_eq!(records[1].trace_id, trace_id);
    }

    #[test]
    fn journal_survives_concurrent_writers() {
        use std::thread;
        let r = Registry::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let ev = r.events();
                thread::spawn(move || {
                    for i in 0..500u64 {
                        ev.emit(EventKind::Other, 1, 0, i);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let records = r.events().records();
        assert!(!records.is_empty());
        assert!(records.len() <= 1024);
        let mut seqs: Vec<u64> = records.iter().map(|e| e.node_seq).collect();
        let sorted = seqs.clone();
        seqs.dedup();
        // node_seq values are unique and the snapshot is sorted.
        assert_eq!(seqs, sorted);
    }

    #[test]
    fn events_json_renders() {
        let events = vec![EventRecord {
            node_seq: 1,
            kind: EventKind::ShardRemapped,
            wall_us: 10,
            mono_ns: 20,
            epoch: 2,
            log: 1,
            detail: 77,
            trace_id: 0,
        }];
        let json = events_to_json(&events);
        assert!(json.contains("\"kind\":\"shard_remapped\""), "{json}");
        assert!(json.contains("\"epoch\":2"), "{json}");
        assert!(json.contains("\"detail\":77"), "{json}");
    }
}
