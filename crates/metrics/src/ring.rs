//! The seqlock ring shared by the span rings and the event journal.
//!
//! Each slot is a seqlock made of plain `AtomicU64`s: 0 = never written,
//! odd = write in progress, `2*pos + 2` = the slot holds the record pushed
//! at head position `pos`. Writers claim a slot with one `fetch_add` on
//! the head and a CAS on the slot's sequence word; readers skip slots
//! whose sequence word is odd or changed while reading. Under extreme
//! overrun a record can be dropped, never torn — every access is atomic.

use std::sync::atomic::{fence, AtomicU64, Ordering};

struct Slot<const WORDS: usize> {
    seq: AtomicU64,
    data: [AtomicU64; WORDS],
}

/// Bounded lock-free MPMC ring of `WORDS`-word records (overwrites oldest).
pub(crate) struct SeqlockRing<const WORDS: usize> {
    slots: Box<[Slot<WORDS>]>,
    head: AtomicU64,
    mask: u64,
}

impl<const WORDS: usize> SeqlockRing<WORDS> {
    pub(crate) fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|_| Slot { seq: AtomicU64::new(0), data: [const { AtomicU64::new(0) }; WORDS] })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { slots, head: AtomicU64::new(0), mask: (cap - 1) as u64 }
    }

    pub(crate) fn push(&self, words: &[u64; WORDS]) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq & 1 == 1 {
            // A lapped writer is still mid-write in this slot; dropping
            // this record is better than tearing that one.
            return;
        }
        let claim = pos.wrapping_mul(2).wrapping_add(1);
        if slot.seq.compare_exchange(seq, claim, Ordering::AcqRel, Ordering::Relaxed).is_err() {
            return;
        }
        for (cell, w) in slot.data.iter().zip(words) {
            cell.store(*w, Ordering::Relaxed);
        }
        slot.seq.store(claim.wrapping_add(1), Ordering::Release);
    }

    /// Every stable record currently in the ring, in slot order.
    /// Concurrent writers may overwrite slots mid-scan; such slots are
    /// skipped, never misread. Callers sort by a record field.
    pub(crate) fn snapshot(&self) -> Vec<[u64; WORDS]> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before & 1 == 1 {
                continue;
            }
            let words: [u64; WORDS] = std::array::from_fn(|i| slot.data[i].load(Ordering::Relaxed));
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != before {
                continue;
            }
            out.push(words);
        }
        out
    }
}
