//! The health/lag plane: machine-readable health verdicts derived from
//! snapshots.
//!
//! A [`HealthReport`] evaluates one node's [`Snapshot`] against a
//! [`HealthPolicy`] (node-local signals: hole-fill backlog, forced-junk
//! pressure, transport accept drops, apply lag when the sequencer tail
//! and applied watermark live in the same registry). [`ClusterHealth`]
//! evaluates a whole [`ClusterSnapshot`] plus the set of unreachable
//! scrape targets, adding the cross-node signals: sealed-epoch
//! divergence, per-log apply lag across registries, and metalog quorum
//! membership. Both surface `ok` / `degraded` / `unhealthy` with a list
//! of typed reasons, rendered as JSON by the `/healthz` endpoint.
//!
//! The evaluators read well-known instrument names (the `GAUGE_*` /
//! `COUNTER_*` constants below); emitters use [`crate::log_scoped`] to
//! scope the per-log ones, so log 0 keeps its historical bare names.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::snapshot::json_string;
use crate::{log_scoped, ClusterSnapshot, Snapshot};

/// Sequencer tail gauge (log-scoped): the highest raw offset granted.
pub const GAUGE_SEQ_TAIL: &str = "corfu.seq.tail";
/// Runtime applied-watermark gauge (log-scoped): the highest raw offset
/// a runtime has applied from that log.
pub const GAUGE_APPLIED: &str = "tango.applied_offset";
/// Sealed/installed epoch gauge (log-scoped): each node's view of the
/// current epoch of a log. Divergence across nodes means a reconfiguration
/// is in flight (or a node is stuck behind one).
pub const GAUGE_EPOCH: &str = "tango.epoch";
/// Client hole-fill backlog gauge: holes currently being chased.
pub const GAUGE_HOLE_BACKLOG: &str = "corfu.client.hole_backlog";
/// Client forced-junk counter.
pub const COUNTER_JUNK_FORCED: &str = "corfu.client.junk_forced";
/// Transport accept-drop counter.
pub const COUNTER_ACCEPT_DROPS: &str = "rpc.accepts_dropped";
/// Storage occupancy gauge (log-scoped): live (untrimmed) pages on a
/// storage node. Published by the node's compactor; a node whose log keeps
/// growing past the policy bound has a broken checkpoint/trim loop.
pub const GAUGE_OCCUPANCY: &str = "corfu.storage.occupancy";
/// Storage prefix-trim horizon gauge (log-scoped).
pub const GAUGE_TRIM_HORIZON: &str = "corfu.storage.trim_horizon";

/// The three-level health verdict. `Ord` ranks severity, so the overall
/// status of a report is the max of its reasons' statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// All signals within policy.
    Ok,
    /// Service continues but something needs attention.
    Degraded,
    /// The node/cluster is likely not serving correctly.
    Unhealthy,
}

impl HealthStatus {
    /// Stable display name (used in JSON).
    pub fn name(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Unhealthy => "unhealthy",
        }
    }
}

/// One tripped health check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReason {
    /// Stable machine-readable code, e.g. `apply_lag`, `unreachable`.
    pub code: String,
    /// Severity this reason contributes.
    pub status: HealthStatus,
    /// Human-readable specifics (values, thresholds, node names).
    pub detail: String,
}

impl HealthReason {
    fn to_json(&self) -> String {
        format!(
            "{{\"code\":{},\"status\":\"{}\",\"detail\":{}}}",
            json_string(&self.code),
            self.status.name(),
            json_string(&self.detail),
        )
    }
}

/// Thresholds for the health checks. All checks are inclusive-pass: a
/// value must *exceed* its threshold to trip.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// Offsets the applied watermark may trail the sequencer tail.
    pub max_apply_lag: i64,
    /// Concurrent hole-fills in flight before the client is degraded
    /// (4x this is unhealthy).
    pub max_hole_backlog: i64,
    /// Epochs two nodes' views of one log may differ.
    pub max_epoch_divergence: i64,
    /// Lifetime accept drops before the transport is degraded.
    pub max_accept_drops: u64,
    /// Live pages a storage node may hold before it is degraded — an
    /// occupancy still climbing past this means checkpoints are not
    /// trimming the log.
    pub max_occupancy: i64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            max_apply_lag: 4096,
            max_hole_backlog: 8,
            max_epoch_divergence: 1,
            max_accept_drops: 128,
            max_occupancy: 1 << 20,
        }
    }
}

/// `name` is `base` scoped to some log (see [`log_scoped`]): returns the
/// log, with the bare `base` meaning log 0.
fn scoped_log(name: &str, base: &str) -> Option<u64> {
    if name == base {
        return Some(0);
    }
    name.strip_prefix(base)?.strip_prefix(".log")?.parse().ok()
}

/// A node-local health verdict with its tripped checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Overall verdict (max severity of `reasons`, `Ok` when empty).
    pub status: HealthStatus,
    /// Every tripped check.
    pub reasons: Vec<HealthReason>,
}

impl HealthReport {
    fn from_reasons(reasons: Vec<HealthReason>) -> Self {
        let status = reasons.iter().map(|r| r.status).max().unwrap_or(HealthStatus::Ok);
        Self { status, reasons }
    }

    /// Evaluates one node's snapshot against `policy`.
    pub fn evaluate(snap: &Snapshot, policy: &HealthPolicy) -> HealthReport {
        let mut reasons = Vec::new();

        let backlog = snap.gauge(GAUGE_HOLE_BACKLOG);
        if backlog > policy.max_hole_backlog {
            let status = if backlog > policy.max_hole_backlog * 4 {
                HealthStatus::Unhealthy
            } else {
                HealthStatus::Degraded
            };
            reasons.push(HealthReason {
                code: "hole_backlog".into(),
                status,
                detail: format!("{backlog} holes in flight (max {})", policy.max_hole_backlog),
            });
        }

        let drops = snap.counter(COUNTER_ACCEPT_DROPS);
        if drops > policy.max_accept_drops {
            reasons.push(HealthReason {
                code: "accept_drops".into(),
                status: HealthStatus::Degraded,
                detail: format!("{drops} connections dropped (max {})", policy.max_accept_drops),
            });
        }

        // Storage occupancy: published per log by the node's compactor.
        for (name, pages) in &snap.gauges {
            let Some(log) = scoped_log(name, GAUGE_OCCUPANCY) else { continue };
            if *pages > policy.max_occupancy {
                reasons.push(HealthReason {
                    code: "occupancy".into(),
                    status: HealthStatus::Degraded,
                    detail: format!("log {log}: {pages} live pages (max {})", policy.max_occupancy),
                });
            }
        }

        // Apply lag is node-local only when one registry carries both
        // gauges (the LocalCluster case); TCP clusters get it from
        // ClusterHealth instead.
        for (name, tail) in &snap.gauges {
            let Some(log) = scoped_log(name, GAUGE_SEQ_TAIL) else { continue };
            let applied_name = log_scoped(GAUGE_APPLIED, log);
            if !snap.gauges.iter().any(|(n, _)| *n == applied_name) {
                continue;
            }
            let lag = tail - snap.gauge(&applied_name);
            if lag > policy.max_apply_lag {
                reasons.push(HealthReason {
                    code: "apply_lag".into(),
                    status: HealthStatus::Degraded,
                    detail: format!(
                        "log {log}: applied trails tail by {lag} (max {})",
                        policy.max_apply_lag
                    ),
                });
            }
        }

        HealthReport::from_reasons(reasons)
    }

    /// JSON rendering served by `/healthz`.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"status\":\"{}\",\"reasons\":[", self.status.name());
        for (i, r) in self.reasons.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// A cluster-wide health verdict: per-node reports plus the cross-node
/// checks (reachability, metalog quorum, epoch divergence, apply lag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterHealth {
    /// Overall verdict: max severity across cluster reasons and every
    /// node report.
    pub status: HealthStatus,
    /// Cluster-level tripped checks.
    pub reasons: Vec<HealthReason>,
    /// Per-node reports for the reachable nodes.
    pub nodes: BTreeMap<String, HealthReport>,
}

impl ClusterHealth {
    /// Evaluates a scraped cluster. `unreachable` names the scrape
    /// targets that did not answer; they degrade the cluster (and, for
    /// metalog members — nodes named `layout*` — losing a majority makes
    /// it unhealthy).
    pub fn evaluate(
        cluster: &ClusterSnapshot,
        unreachable: &[String],
        policy: &HealthPolicy,
    ) -> ClusterHealth {
        let mut reasons = Vec::new();

        for name in unreachable {
            reasons.push(HealthReason {
                code: "unreachable".into(),
                status: HealthStatus::Degraded,
                detail: format!("scrape target {name} did not answer"),
            });
        }

        let is_layout = |name: &str| name.starts_with("layout");
        let layout_total = cluster.nodes().filter(|(n, _)| is_layout(n)).count()
            + unreachable.iter().filter(|n| is_layout(n)).count();
        let layout_down = unreachable.iter().filter(|n| is_layout(n)).count();
        if layout_total > 0 && layout_down * 2 > layout_total {
            reasons.push(HealthReason {
                code: "meta_quorum".into(),
                status: HealthStatus::Unhealthy,
                detail: format!("{layout_down} of {layout_total} metalog replicas unreachable"),
            });
        }

        // Sealed-epoch divergence: every node publishing a view of one
        // log's epoch should agree within the policy bound.
        let mut epochs: BTreeMap<String, Vec<(String, i64)>> = BTreeMap::new();
        // Per-log maxima for the cross-node apply-lag check.
        let mut tails: BTreeMap<u64, i64> = BTreeMap::new();
        let mut applied: BTreeMap<u64, i64> = BTreeMap::new();
        let mut logs: BTreeSet<u64> = BTreeSet::new();
        for (node, snap) in cluster.nodes() {
            for (name, value) in &snap.gauges {
                if scoped_log(name, GAUGE_EPOCH).is_some() {
                    epochs.entry(name.clone()).or_default().push((node.to_string(), *value));
                }
                if let Some(log) = scoped_log(name, GAUGE_SEQ_TAIL) {
                    let slot = tails.entry(log).or_insert(i64::MIN);
                    *slot = (*slot).max(*value);
                    logs.insert(log);
                }
                if let Some(log) = scoped_log(name, GAUGE_APPLIED) {
                    let slot = applied.entry(log).or_insert(i64::MIN);
                    *slot = (*slot).max(*value);
                }
            }
        }

        for (name, views) in &epochs {
            let min = views.iter().map(|(_, v)| *v).min().unwrap_or(0);
            let max = views.iter().map(|(_, v)| *v).max().unwrap_or(0);
            if max - min > policy.max_epoch_divergence {
                let lagging: Vec<&str> =
                    views.iter().filter(|(_, v)| *v == min).map(|(n, _)| n.as_str()).collect();
                reasons.push(HealthReason {
                    code: "epoch_divergence".into(),
                    status: HealthStatus::Degraded,
                    detail: format!(
                        "{name}: views span {min}..{max} (max divergence {}), behind: {}",
                        policy.max_epoch_divergence,
                        lagging.join(",")
                    ),
                });
            }
        }

        for log in &logs {
            let (Some(tail), Some(done)) = (tails.get(log), applied.get(log)) else {
                continue;
            };
            let lag = tail - done;
            if lag > policy.max_apply_lag {
                reasons.push(HealthReason {
                    code: "apply_lag".into(),
                    status: HealthStatus::Degraded,
                    detail: format!(
                        "log {log}: applied trails tail by {lag} (max {})",
                        policy.max_apply_lag
                    ),
                });
            }
        }

        let nodes: BTreeMap<String, HealthReport> = cluster
            .nodes()
            .map(|(name, snap)| (name.to_string(), HealthReport::evaluate(snap, policy)))
            .collect();

        let status = reasons
            .iter()
            .map(|r| r.status)
            .chain(nodes.values().map(|r| r.status))
            .max()
            .unwrap_or(HealthStatus::Ok);
        ClusterHealth { status, reasons, nodes }
    }

    /// JSON rendering: the cluster verdict, its reasons, and the
    /// per-node reports.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"status\":\"{}\",\"reasons\":[", self.status.name());
        for (i, r) in self.reasons.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("],\"nodes\":{");
        for (i, (name, report)) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), report.to_json());
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn clean_snapshot_is_ok() {
        let r = Registry::new();
        r.counter("corfu.client.tokens").add(5);
        let report = HealthReport::evaluate(&r.snapshot(), &HealthPolicy::default());
        assert_eq!(report.status, HealthStatus::Ok);
        assert!(report.reasons.is_empty());
        assert!(report.to_json().contains("\"status\":\"ok\""));
    }

    #[test]
    fn hole_backlog_degrades_then_unhealthies() {
        let policy = HealthPolicy::default();
        let r = Registry::new();
        let backlog = r.gauge(GAUGE_HOLE_BACKLOG);

        backlog.set(policy.max_hole_backlog + 1);
        let report = HealthReport::evaluate(&r.snapshot(), &policy);
        assert_eq!(report.status, HealthStatus::Degraded);
        assert_eq!(report.reasons[0].code, "hole_backlog");

        backlog.set(policy.max_hole_backlog * 4 + 1);
        let report = HealthReport::evaluate(&r.snapshot(), &policy);
        assert_eq!(report.status, HealthStatus::Unhealthy);
    }

    #[test]
    fn storage_occupancy_past_policy_degrades() {
        let policy = HealthPolicy { max_occupancy: 1000, ..HealthPolicy::default() };
        let r = Registry::new();
        r.gauge(&log_scoped(GAUGE_OCCUPANCY, 1)).set(999);
        let report = HealthReport::evaluate(&r.snapshot(), &policy);
        assert_eq!(report.status, HealthStatus::Ok);

        r.gauge(&log_scoped(GAUGE_OCCUPANCY, 1)).set(1001);
        let report = HealthReport::evaluate(&r.snapshot(), &policy);
        assert_eq!(report.status, HealthStatus::Degraded);
        assert_eq!(report.reasons[0].code, "occupancy");
        assert!(report.reasons[0].detail.contains("log 1"), "{:?}", report.reasons);
    }

    #[test]
    fn node_local_apply_lag_checks_each_log() {
        let policy = HealthPolicy { max_apply_lag: 100, ..HealthPolicy::default() };
        let r = Registry::new();
        r.gauge(&log_scoped(GAUGE_SEQ_TAIL, 0)).set(1000);
        r.gauge(&log_scoped(GAUGE_APPLIED, 0)).set(950);
        r.gauge(&log_scoped(GAUGE_SEQ_TAIL, 2)).set(5000);
        r.gauge(&log_scoped(GAUGE_APPLIED, 2)).set(100);
        let report = HealthReport::evaluate(&r.snapshot(), &policy);
        assert_eq!(report.status, HealthStatus::Degraded);
        assert_eq!(report.reasons.len(), 1);
        assert!(report.reasons[0].detail.contains("log 2"), "{:?}", report.reasons);
    }

    #[test]
    fn unreachable_nodes_degrade_and_lost_quorum_is_unhealthy() {
        let mut cs = ClusterSnapshot::new();
        cs.insert("layout-0", Registry::new().snapshot());
        cs.insert("seq-0", Registry::new().snapshot());
        let policy = HealthPolicy::default();

        let health = ClusterHealth::evaluate(&cs, &[], &policy);
        assert_eq!(health.status, HealthStatus::Ok);

        let health = ClusterHealth::evaluate(&cs, &["storage-1".to_string()], &policy);
        assert_eq!(health.status, HealthStatus::Degraded);
        assert_eq!(health.reasons[0].code, "unreachable");

        // 2 of 3 metalog replicas down: no quorum.
        let health = ClusterHealth::evaluate(
            &cs,
            &["layout-1".to_string(), "layout-2".to_string()],
            &policy,
        );
        assert_eq!(health.status, HealthStatus::Unhealthy);
        assert!(health.reasons.iter().any(|r| r.code == "meta_quorum"));
        assert!(health.to_json().contains("\"meta_quorum\""));
    }

    #[test]
    fn epoch_divergence_across_nodes_degrades() {
        let policy = HealthPolicy::default();
        let ahead = {
            let r = Registry::new();
            r.gauge(&log_scoped(GAUGE_EPOCH, 1)).set(7);
            r.snapshot()
        };
        let behind = {
            let r = Registry::new();
            r.gauge(&log_scoped(GAUGE_EPOCH, 1)).set(3);
            r.snapshot()
        };
        let mut cs = ClusterSnapshot::new();
        cs.insert("seq-1", ahead);
        cs.insert("clients", behind);
        let health = ClusterHealth::evaluate(&cs, &[], &policy);
        assert_eq!(health.status, HealthStatus::Degraded);
        let reason = health.reasons.iter().find(|r| r.code == "epoch_divergence").unwrap();
        assert!(reason.detail.contains("clients"), "{}", reason.detail);
    }

    #[test]
    fn cross_node_apply_lag_uses_per_log_maxima() {
        let policy = HealthPolicy { max_apply_lag: 10, ..HealthPolicy::default() };
        let seq = {
            let r = Registry::new();
            r.gauge(&log_scoped(GAUGE_SEQ_TAIL, 1)).set(500);
            r.snapshot()
        };
        let client = {
            let r = Registry::new();
            r.gauge(&log_scoped(GAUGE_APPLIED, 1)).set(480);
            r.snapshot()
        };
        let mut cs = ClusterSnapshot::new();
        cs.insert("seq-1", seq);
        cs.insert("clients", client.clone());
        let health = ClusterHealth::evaluate(&cs, &[], &policy);
        assert_eq!(health.status, HealthStatus::Degraded);
        assert!(health.reasons.iter().any(|r| r.code == "apply_lag"));

        // A second, caught-up runtime raises the per-log max: healthy.
        let caught_up = {
            let r = Registry::new();
            r.gauge(&log_scoped(GAUGE_APPLIED, 1)).set(495);
            r.snapshot()
        };
        cs.insert("clients-2", caught_up);
        let health = ClusterHealth::evaluate(&cs, &[], &policy);
        assert_eq!(health.status, HealthStatus::Ok);
    }

    #[test]
    fn scoped_log_parses_suffixes() {
        assert_eq!(scoped_log("corfu.seq.tail", GAUGE_SEQ_TAIL), Some(0));
        assert_eq!(scoped_log("corfu.seq.tail.log3", GAUGE_SEQ_TAIL), Some(3));
        assert_eq!(scoped_log("corfu.seq.tail.logx", GAUGE_SEQ_TAIL), None);
        assert_eq!(scoped_log("corfu.seq.tails", GAUGE_SEQ_TAIL), None);
        assert_eq!(scoped_log("other", GAUGE_SEQ_TAIL), None);
    }
}
