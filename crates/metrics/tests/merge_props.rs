//! Property tests: `ClusterSnapshot` aggregation is associative and
//! idempotent, the merged view sums histogram buckets exactly, and the
//! merged timeline is insertion-order independent. Gauges use the
//! log-scoped health names (`tango.applied_offset[.logN]`, ...) so the
//! properties cover exactly the composite-offset instruments the sharded
//! health plane reads.

use proptest::prelude::*;
use tango_metrics::health::{GAUGE_APPLIED, GAUGE_SEQ_TAIL};
use tango_metrics::{log_scoped, ClusterSnapshot, EventKind, Registry, Snapshot};

/// Builds a snapshot from generated instrument values. Instrument names
/// are drawn from a small pool so snapshots overlap (the interesting
/// case for merging); gauges land under per-log scoped health names and
/// events in the journal.
fn build_snapshot(
    counters: &[(u8, u64)],
    gauges: &[(u8, i64)],
    hists: &[(u8, Vec<u64>)],
    events: &[(u8, u64)],
) -> Snapshot {
    let r = Registry::new();
    for (name, v) in counters {
        r.counter(&format!("c{}", name % 4)).add(*v);
    }
    for (log, v) in gauges {
        // Log 0 exercises the bare-name alias, higher logs the suffix.
        let base = if log % 2 == 0 { GAUGE_APPLIED } else { GAUGE_SEQ_TAIL };
        r.gauge(&log_scoped(base, (log % 3) as u64)).add(*v);
    }
    for (name, samples) in hists {
        let h = r.histogram(&format!("h{}", name % 3));
        for s in samples {
            h.record(*s);
        }
    }
    for (log, detail) in events {
        r.events().emit(EventKind::Sealed, detail % 5, (log % 3) as u64, *detail);
    }
    r.snapshot()
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        proptest::collection::vec((any::<u8>(), 0u64..1_000_000), 0..8),
        proptest::collection::vec((any::<u8>(), -1_000i64..1_000_000), 0..6),
        proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u64>(), 0..16)),
            0..4,
        ),
        proptest::collection::vec((any::<u8>(), any::<u64>()), 0..6),
    )
        .prop_map(|(counters, gauges, hists, events)| {
            build_snapshot(&counters, &gauges, &hists, &events)
        })
}

fn one_node(name: String, snap: Snapshot) -> ClusterSnapshot {
    let mut cs = ClusterSnapshot::new();
    cs.insert(name, snap);
    cs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        let (na, nb, nc) = ("node-a".to_string(), "node-b".to_string(), "node-c".to_string());
        // (a ∪ b) ∪ c
        let mut left = one_node(na.clone(), a.clone());
        left.merge(&one_node(nb.clone(), b.clone()));
        left.merge(&one_node(nc.clone(), c.clone()));
        // a ∪ (b ∪ c)
        let mut bc = one_node(nb, b);
        bc.merge(&one_node(nc, c));
        let mut right = one_node(na, a);
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.merged(), right.merged());
    }

    #[test]
    fn merge_is_idempotent(a in arb_snapshot(), b in arb_snapshot()) {
        let mut cs = one_node("node-a".to_string(), a);
        cs.merge(&one_node("node-b".to_string(), b));
        let mut twice = cs.clone();
        twice.merge(&cs);
        prop_assert_eq!(&twice, &cs);
        prop_assert_eq!(twice.merged(), cs.merged());
    }

    #[test]
    fn merged_view_is_node_order_independent(a in arb_snapshot(), b in arb_snapshot()) {
        // Node names differ but the instrument *values* land in one sum;
        // swapping which node carries which snapshot must not matter.
        let mut ab = ClusterSnapshot::new();
        ab.insert("node-a", a.clone());
        ab.insert("node-b", b.clone());
        let mut ba = ClusterSnapshot::new();
        ba.insert("node-a", b);
        ba.insert("node-b", a);
        prop_assert_eq!(ab.merged(), ba.merged());
    }

    #[test]
    fn timeline_is_insertion_order_independent(a in arb_snapshot(), b in arb_snapshot()) {
        let mut ab = ClusterSnapshot::new();
        ab.insert("node-a", a.clone());
        ab.insert("node-b", b.clone());
        let mut ba = ClusterSnapshot::new();
        ba.insert("node-b", b.clone());
        ba.insert("node-a", a.clone());
        // Re-inserting the same scrape never duplicates events.
        ba.insert("node-a", a.clone());
        prop_assert_eq!(ab.timeline_text(), ba.timeline_text());
        prop_assert_eq!(
            ab.timeline().len(),
            a.events.len() + b.events.len(),
            "the merged timeline carries every journalled event exactly once"
        );
    }

    #[test]
    fn merged_histogram_buckets_add_exactly(
        xs in proptest::collection::vec(any::<u64>(), 1..32),
        ys in proptest::collection::vec(any::<u64>(), 1..32),
    ) {
        let snap_of = |samples: &[u64]| {
            let r = Registry::new();
            let h = r.histogram("lat");
            for s in samples {
                h.record(*s);
            }
            r.snapshot()
        };
        let mut cs = ClusterSnapshot::new();
        cs.insert("x", snap_of(&xs));
        cs.insert("y", snap_of(&ys));
        let merged = cs.merged();
        let h = merged.histogram("lat").unwrap();
        prop_assert_eq!(h.count(), (xs.len() + ys.len()) as u64);
        let mut expected = vec![0u64; tango_metrics::HISTOGRAM_BUCKETS];
        for s in xs.iter().chain(ys.iter()) {
            expected[tango_metrics::bucket_index(*s)] += 1;
        }
        prop_assert_eq!(&h.buckets, &expected);
        let want_sum = xs.iter().chain(ys.iter()).fold(0u64, |acc, s| acc.wrapping_add(*s));
        prop_assert_eq!(h.sum, want_sum);
    }
}
