//! Multi-threaded stress: N threads hammer shared instruments; totals and
//! histogram bucket counts must be exact (no lost updates, no torn state).

use std::thread;

use tango_metrics::{bucket_index, Registry, HISTOGRAM_BUCKETS};

const THREADS: usize = 8;
const RECORDS_PER_THREAD: u64 = 50_000;

#[test]
fn concurrent_totals_are_exact() {
    let registry = Registry::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = registry.clone();
            thread::spawn(move || {
                let counter = registry.counter("stress.ops");
                let gauge = registry.gauge("stress.level");
                let hist = registry.histogram("stress.values");
                for i in 0..RECORDS_PER_THREAD {
                    counter.inc();
                    gauge.add(1);
                    gauge.sub(1);
                    // Deterministic spread across many buckets.
                    hist.record((t as u64 + 1) * i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = registry.snapshot();
    let total = THREADS as u64 * RECORDS_PER_THREAD;
    assert_eq!(snap.counter("stress.ops"), total);
    assert_eq!(snap.gauge("stress.level"), 0);

    let hist = snap.histogram("stress.values").unwrap();
    assert_eq!(hist.count(), total);

    // Recompute the expected per-bucket counts and sum sequentially.
    let mut expected_buckets = vec![0u64; HISTOGRAM_BUCKETS];
    let mut expected_sum = 0u64;
    for t in 0..THREADS as u64 {
        for i in 0..RECORDS_PER_THREAD {
            let v = (t + 1) * i;
            expected_buckets[bucket_index(v)] += 1;
            expected_sum = expected_sum.wrapping_add(v);
        }
    }
    assert_eq!(hist.buckets, expected_buckets);
    assert_eq!(hist.sum, expected_sum);
}

#[test]
fn snapshots_race_with_writers() {
    let registry = Registry::new();
    let writer = {
        let registry = registry.clone();
        thread::spawn(move || {
            let counter = registry.counter("race.ops");
            for _ in 0..200_000u64 {
                counter.inc();
            }
        })
    };
    // Snapshots taken mid-flight must be monotonic and never exceed the
    // final total.
    let mut last = 0;
    while !writer.is_finished() {
        let now = registry.snapshot().counter("race.ops");
        assert!(now >= last && now <= 200_000);
        last = now;
    }
    writer.join().unwrap();
    assert_eq!(registry.snapshot().counter("race.ops"), 200_000);
}
