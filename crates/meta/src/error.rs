use std::fmt;

/// Errors surfaced by the metalog client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    /// Fewer than a quorum of replicas answered, after every retry.
    QuorumUnavailable {
        /// Replicas that answered the final round.
        reachable: usize,
        /// The majority the operation needed.
        needed: usize,
    },
    /// One replica could not serve this call (transport failure, or it
    /// rejected the request as malformed — a corrupted frame in transit).
    /// Quorum operations treat this as a failover, not a failure.
    Unreachable {
        /// The replica that failed.
        replica: u32,
        /// What went wrong.
        detail: String,
    },
    /// A replica answered with something the protocol does not allow here.
    Protocol(String),
    /// A malformed message.
    Codec(String),
    /// The metalog has no decided records (a deployment must bootstrap
    /// position 0 before clients read).
    Empty,
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::QuorumUnavailable { reachable, needed } => {
                write!(
                    f,
                    "metalog quorum unavailable: {reachable} replicas reachable, {needed} needed"
                )
            }
            MetaError::Unreachable { replica, detail } => {
                write!(f, "metalog replica {replica} unreachable: {detail}")
            }
            MetaError::Protocol(e) => write!(f, "metalog protocol violation: {e}"),
            MetaError::Codec(e) => write!(f, "metalog codec failure: {e}"),
            MetaError::Empty => write!(f, "metalog has no decided records"),
        }
    }
}

impl std::error::Error for MetaError {}

impl From<tango_wire::WireError> for MetaError {
    fn from(e: tango_wire::WireError) -> Self {
        MetaError::Codec(e.to_string())
    }
}
