#![warn(missing_docs)]
//! The metalog: a replicated, write-once log of control-plane records.
//!
//! Tango's whole thesis is that metadata should live on a shared log; this
//! crate turns that discipline inward, onto the layout service itself. A
//! *metalog* is a dense, write-once sequence of opaque records replicated
//! client-driven across a small set of replicas (default 3). There is no
//! sequencer: the record's position *is* its token (the CORFU epoch-CAS
//! becomes "the projection for epoch `e` is the write-once entry at metalog
//! position `e`"), so arbitration reduces to the same write-once rule the
//! data plane's flash units enforce.
//!
//! * [`MetaNode`] — one replica: a write-once `position → record` store
//!   behind the [`tango_rpc::RpcHandler`] interface, usable over the
//!   in-process or TCP transport. Malformed requests get a typed
//!   [`proto::MetaResponse::ErrMalformed`], never a fake conflict.
//! * [`MetaClient`] — the quorum client: client-driven replication in
//!   replica order (the lowest-indexed reachable replica arbitrates races),
//!   majority-quorum commit and reads, repair of half-written positions,
//!   replica discovery via peer lists, failover, and bounded
//!   exponential-backoff retry. Instrumented under `meta.*`.
//!
//! ## Fault model
//!
//! The metalog tolerates `⌊N/2⌋` **fail-stop** replica crashes: a replica
//! that errors is presumed dead for arbitration (exactly the assumption the
//! data plane's seal/rebuild protocols already make). Because every
//! proposer writes replicas in the same order and adopts the first
//! conflicting value it meets, at most one value can ever reach a majority
//! at a position — a quorum read is therefore stable once any value is
//! majority-replicated, and a reader that finds a half-written position
//! (its proposer died mid-flight) completes it, just as data-plane readers
//! repair half-written replica chains.

mod client;
mod error;
pub mod metrics;
mod node;
pub mod proto;

pub use client::{Dial, MetaClient, MetaOptions};
pub use error::MetaError;
pub use node::MetaNode;
pub use proto::ReplicaInfo;

/// A position in a metalog (for the layout metalog, the epoch).
pub type Position = u64;

/// Convenience alias for metalog results.
pub type Result<T> = std::result::Result<T, MetaError>;

/// Majority quorum for `n` replicas.
pub fn quorum(n: usize) -> usize {
    n / 2 + 1
}
