//! Wire messages for the metalog replica service.

use bytes::Bytes;
use tango_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::Position;

/// Connection information for one metalog replica. Replica order matters:
/// clients write replicas in ascending list order, so the lowest-indexed
/// reachable replica arbitrates write-once races.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaInfo {
    /// The replica's identifier (kept distinct from data-plane node ids by
    /// the deployment; the cluster harnesses use a dedicated id range).
    pub id: u32,
    /// The replica's transport address.
    pub addr: String,
}

impl Encode for ReplicaInfo {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.id);
        w.put_str(&self.addr);
    }
}

impl Decode for ReplicaInfo {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        Ok(Self { id: r.get_u32()?, addr: r.get_str()?.to_owned() })
    }
}

/// Requests accepted by a metalog replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaRequest {
    /// Read the record at `pos`.
    Read {
        /// Metalog position.
        pos: Position,
    },
    /// Write-once put at `pos`. Rewriting an identical record is an
    /// idempotent success; a different record is answered with
    /// [`MetaResponse::AlreadyWritten`] carrying the incumbent.
    Write {
        /// Metalog position.
        pos: Position,
        /// The record to install.
        record: Bytes,
    },
    /// Query the local tail (highest written position + 1).
    Tail,
    /// Fetch this replica's view of the replica set (discovery).
    Peers,
    /// Install a new replica-set view (operations plane: used when a
    /// crashed replica is replaced).
    SetPeers(Vec<ReplicaInfo>),
}

/// Responses from a metalog replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaResponse {
    /// The operation succeeded.
    Ok,
    /// The record at the requested position.
    Record(Bytes),
    /// The requested position has never been written.
    Unwritten,
    /// Write-once violation; the incumbent record.
    AlreadyWritten(Bytes),
    /// The local tail (highest written position + 1).
    Tail(Position),
    /// The replica's view of the replica set.
    Peers(Vec<ReplicaInfo>),
    /// The request failed to decode. Distinct from every data-carrying
    /// response so corruption is never mistaken for a benign race.
    ErrMalformed {
        /// What the decoder rejected.
        reason: String,
    },
    /// The replica's durable store failed the operation. Quorum clients
    /// treat this like an unreachable replica and fail over.
    ErrStorage {
        /// What the store reported.
        reason: String,
    },
}

impl Encode for MetaRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            MetaRequest::Read { pos } => {
                w.put_u8(0);
                w.put_u64(*pos);
            }
            MetaRequest::Write { pos, record } => {
                w.put_u8(1);
                w.put_u64(*pos);
                w.put_bytes(record);
            }
            MetaRequest::Tail => w.put_u8(2),
            MetaRequest::Peers => w.put_u8(3),
            MetaRequest::SetPeers(peers) => {
                w.put_u8(4);
                peers.encode(w);
            }
        }
    }
}

impl Decode for MetaRequest {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(MetaRequest::Read { pos: r.get_u64()? }),
            1 => Ok(MetaRequest::Write {
                pos: r.get_u64()?,
                record: Bytes::copy_from_slice(r.get_bytes()?),
            }),
            2 => Ok(MetaRequest::Tail),
            3 => Ok(MetaRequest::Peers),
            4 => Ok(MetaRequest::SetPeers(Vec::<ReplicaInfo>::decode(r)?)),
            tag => Err(WireError::InvalidTag { what: "MetaRequest", tag: tag as u64 }),
        }
    }
}

impl Encode for MetaResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            MetaResponse::Ok => w.put_u8(0),
            MetaResponse::Record(b) => {
                w.put_u8(1);
                w.put_bytes(b);
            }
            MetaResponse::Unwritten => w.put_u8(2),
            MetaResponse::AlreadyWritten(b) => {
                w.put_u8(3);
                w.put_bytes(b);
            }
            MetaResponse::Tail(t) => {
                w.put_u8(4);
                w.put_u64(*t);
            }
            MetaResponse::Peers(peers) => {
                w.put_u8(5);
                peers.encode(w);
            }
            MetaResponse::ErrMalformed { reason } => {
                w.put_u8(6);
                w.put_str(reason);
            }
            MetaResponse::ErrStorage { reason } => {
                w.put_u8(7);
                w.put_str(reason);
            }
        }
    }
}

impl Decode for MetaResponse {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(MetaResponse::Ok),
            1 => Ok(MetaResponse::Record(Bytes::copy_from_slice(r.get_bytes()?))),
            2 => Ok(MetaResponse::Unwritten),
            3 => Ok(MetaResponse::AlreadyWritten(Bytes::copy_from_slice(r.get_bytes()?))),
            4 => Ok(MetaResponse::Tail(r.get_u64()?)),
            5 => Ok(MetaResponse::Peers(Vec::<ReplicaInfo>::decode(r)?)),
            6 => Ok(MetaResponse::ErrMalformed { reason: r.get_str()?.to_owned() }),
            7 => Ok(MetaResponse::ErrStorage { reason: r.get_str()?.to_owned() }),
            tag => Err(WireError::InvalidTag { what: "MetaResponse", tag: tag as u64 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_wire::{decode_from_slice, encode_to_vec};

    #[test]
    fn meta_messages_roundtrip() {
        let reqs = vec![
            MetaRequest::Read { pos: 7 },
            MetaRequest::Write { pos: 0, record: Bytes::from_static(b"projection-0") },
            MetaRequest::Write { pos: u64::MAX, record: Bytes::new() },
            MetaRequest::Tail,
            MetaRequest::Peers,
            MetaRequest::SetPeers(vec![
                ReplicaInfo { id: 30_000, addr: "meta-0".into() },
                ReplicaInfo { id: 30_001, addr: "127.0.0.1:9999".into() },
            ]),
            MetaRequest::SetPeers(vec![]),
        ];
        for m in reqs {
            let bytes = encode_to_vec(&m);
            assert_eq!(decode_from_slice::<MetaRequest>(&bytes).unwrap(), m);
        }
        let resps = vec![
            MetaResponse::Ok,
            MetaResponse::Record(Bytes::from_static(b"rec")),
            MetaResponse::Unwritten,
            MetaResponse::AlreadyWritten(Bytes::from_static(b"incumbent")),
            MetaResponse::Tail(42),
            MetaResponse::Peers(vec![ReplicaInfo { id: 1, addr: "a".into() }]),
            MetaResponse::ErrMalformed { reason: "invalid tag 9".into() },
            MetaResponse::ErrStorage { reason: "page 3 CRC mismatch".into() },
        ];
        for m in resps {
            let bytes = encode_to_vec(&m);
            assert_eq!(decode_from_slice::<MetaResponse>(&bytes).unwrap(), m);
        }
    }
}
