//! The metalog quorum client: client-driven replication with write-once
//! arbitration, majority reads, repair, discovery, and failover.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use tango_metrics::Registry;
use tango_rpc::ClientConn;
use tango_wire::{decode_from_slice, encode_to_vec};

use crate::metrics::MetaMetrics;
use crate::proto::{MetaRequest, MetaResponse, ReplicaInfo};
use crate::{quorum, MetaError, Position, Result};

/// Opens connections to metalog replicas. The deployment decides what an
/// address means (in-process registry name, TCP `host:port`, ...).
pub trait Dial: Send + Sync {
    /// Opens (or reuses) a connection to `replica`.
    fn dial(&self, replica: &ReplicaInfo) -> Arc<dyn ClientConn>;
}

impl<F> Dial for F
where
    F: Fn(&ReplicaInfo) -> Arc<dyn ClientConn> + Send + Sync,
{
    fn dial(&self, replica: &ReplicaInfo) -> Arc<dyn ClientConn> {
        self(replica)
    }
}

/// Tuning knobs for the metalog client.
#[derive(Debug, Clone)]
pub struct MetaOptions {
    /// Whole-quorum rounds retried (with exponential backoff) when fewer
    /// than a majority of replicas answer. The first attempt is free; a
    /// budget of 4 means up to 5 rounds.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry up to
    /// [`MetaOptions::backoff_max`].
    pub backoff_base: Duration,
    /// Cap on the exponential backoff.
    pub backoff_max: Duration,
}

impl Default for MetaOptions {
    fn default() -> Self {
        Self {
            max_retries: 4,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(50),
        }
    }
}

/// What one quorum round concluded, or that it must be retried.
enum Round<T> {
    Done(T),
    NoQuorum { reachable: usize, needed: usize },
}

/// The metalog quorum client.
///
/// Writes go to replicas in ascending list order, so the lowest-indexed
/// reachable replica arbitrates write-once races; a proposer that meets an
/// incumbent record before any of its own writes landed adopts it and
/// helps copy it forward (exactly how data-plane readers repair
/// half-written chains). An operation commits once a majority of replicas
/// holds its record; reads likewise require a majority holding one value,
/// completing half-written positions on the way.
pub struct MetaClient {
    replicas: RwLock<Vec<ReplicaInfo>>,
    dial: Arc<dyn Dial>,
    conns: Mutex<HashMap<u32, Arc<dyn ClientConn>>>,
    opts: MetaOptions,
    metrics: MetaMetrics,
}

impl MetaClient {
    /// A client over `replicas` (in arbitration order), dialing through
    /// `dial`, with default options and disabled instruments.
    pub fn new(replicas: Vec<ReplicaInfo>, dial: Arc<dyn Dial>) -> Self {
        Self::with_options(replicas, dial, MetaOptions::default())
    }

    /// A client with explicit options.
    pub fn with_options(
        replicas: Vec<ReplicaInfo>,
        dial: Arc<dyn Dial>,
        opts: MetaOptions,
    ) -> Self {
        assert!(!replicas.is_empty(), "a metalog needs at least one replica");
        Self {
            replicas: RwLock::new(replicas),
            dial,
            conns: Mutex::new(HashMap::new()),
            opts,
            metrics: MetaMetrics::default(),
        }
    }

    /// Binds this client's `meta.*` instruments in `registry`.
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = MetaMetrics::from_registry(registry);
        self
    }

    /// This client's `meta.*` instrument bundle.
    pub fn metrics(&self) -> &MetaMetrics {
        &self.metrics
    }

    /// The client's current view of the replica set.
    pub fn replicas(&self) -> Vec<ReplicaInfo> {
        self.replicas.read().clone()
    }

    /// Replaces the client's replica view (e.g. after an out-of-band
    /// membership change). Prefer [`MetaClient::discover`], which asks the
    /// replicas themselves.
    pub fn set_replicas(&self, replicas: Vec<ReplicaInfo>) {
        assert!(!replicas.is_empty(), "a metalog needs at least one replica");
        let mut cur = self.replicas.write();
        self.conns.lock().retain(|id, _| replicas.iter().any(|r| r.id == *id));
        *cur = replicas;
    }

    /// Asks the replicas for their current peer list and adopts the first
    /// non-empty answer that differs from this client's view. Returns
    /// whether the view changed. Quorum rounds call this automatically
    /// before retrying, so clients ride through replica replacement.
    pub fn discover(&self) -> bool {
        for replica in self.replicas() {
            match self.call_replica(&replica, &MetaRequest::Peers) {
                Ok(MetaResponse::Peers(peers)) if !peers.is_empty() => {
                    if peers != *self.replicas.read() {
                        self.set_replicas(peers);
                        return true;
                    }
                    return false;
                }
                _ => continue,
            }
        }
        false
    }

    fn conn(&self, replica: &ReplicaInfo) -> Arc<dyn ClientConn> {
        let mut conns = self.conns.lock();
        if let Some(c) = conns.get(&replica.id) {
            return Arc::clone(c);
        }
        let c = self.dial.dial(replica);
        conns.insert(replica.id, Arc::clone(&c));
        c
    }

    /// One replica round trip. Transport failures drop the cached
    /// connection (the next attempt re-dials) and count as a failover.
    fn call_replica(&self, replica: &ReplicaInfo, req: &MetaRequest) -> Result<MetaResponse> {
        self.metrics.quorum_rtts.inc();
        let conn = self.conn(replica);
        match conn.call(&encode_to_vec(req)) {
            Ok(bytes) => match decode_from_slice::<MetaResponse>(&bytes)? {
                // Our encoder cannot emit a malformed request, so this
                // means the frame was corrupted in transit: retriable, and
                // counted as a failover like any other per-replica fault.
                MetaResponse::ErrMalformed { reason } => {
                    self.metrics.failovers.inc();
                    Err(MetaError::Unreachable {
                        replica: replica.id,
                        detail: format!("request rejected as malformed: {reason}"),
                    })
                }
                resp => Ok(resp),
            },
            Err(e) => {
                self.conns.lock().remove(&replica.id);
                self.metrics.failovers.inc();
                Err(MetaError::Unreachable { replica: replica.id, detail: e.to_string() })
            }
        }
    }

    /// Runs `round` with bounded exponential-backoff retry on quorum loss,
    /// re-discovering the replica set between rounds.
    fn with_quorum_retry<T>(&self, mut round: impl FnMut() -> Result<Round<T>>) -> Result<T> {
        let mut backoff = self.opts.backoff_base;
        let mut last = (0usize, 0usize);
        for attempt in 0..=self.opts.max_retries {
            match round()? {
                Round::Done(v) => return Ok(v),
                Round::NoQuorum { reachable, needed } => {
                    last = (reachable, needed);
                    if attempt < self.opts.max_retries {
                        self.metrics.retries.inc();
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(self.opts.backoff_max);
                        // A replaced replica set is the common cause of a
                        // lost quorum; pick it up before trying again.
                        self.discover();
                    }
                }
            }
        }
        Err(MetaError::QuorumUnavailable { reachable: last.0, needed: last.1 })
    }

    /// Proposes `record` at `pos`. `Ok(None)` means this record was
    /// installed; `Ok(Some(winner))` means write-once arbitration picked a
    /// different record (read your own winner back from it).
    pub fn propose_at(&self, pos: Position, record: Bytes) -> Result<Option<Bytes>> {
        self.metrics.proposals.inc();
        let rtts_before = self.metrics.quorum_rtts.get();
        let outcome = self.with_quorum_retry(|| self.propose_round(pos, &record))?;
        self.metrics.round_trips_per_op.record(self.metrics.quorum_rtts.get() - rtts_before);
        // The journal records what the quorum decided at this position:
        // detail 1 = our record installed, 0 = an incumbent won arbitration.
        match &outcome {
            None => {
                self.metrics.installs.inc();
                self.metrics.events.emit(tango_metrics::EventKind::ProjectionInstalled, pos, 0, 1);
            }
            Some(_) => {
                self.metrics.conflicts.inc();
                self.metrics.events.emit(tango_metrics::EventKind::ProjectionInstalled, pos, 0, 0);
            }
        }
        Ok(outcome)
    }

    fn propose_round(&self, pos: Position, record: &Bytes) -> Result<Round<Option<Bytes>>> {
        let replicas = self.replicas();
        let needed = quorum(replicas.len());
        // The value being replicated; switches to the incumbent if we lose
        // arbitration before any replica accepted ours.
        let mut value = record.clone();
        let mut winner: Option<Bytes> = None;
        let mut acks = 0usize;
        let mut reachable = 0usize;
        for replica in &replicas {
            match self.call_replica(replica, &MetaRequest::Write { pos, record: value.clone() }) {
                Ok(MetaResponse::Ok) => {
                    reachable += 1;
                    acks += 1;
                }
                Ok(MetaResponse::AlreadyWritten(existing)) => {
                    reachable += 1;
                    if acks == 0 {
                        // Lost at the arbitrating replica: adopt the
                        // incumbent and help copy it forward.
                        winner = Some(existing.clone());
                        value = existing;
                        acks = 1;
                    }
                    // With acks > 0 a lower-indexed replica already accepted
                    // our value; keep pushing it — the majority decides, and
                    // write-once cells guarantee at most one value can ever
                    // reach it.
                }
                Ok(other) => {
                    return Err(MetaError::Protocol(format!(
                        "replica {} answered write with {other:?}",
                        replica.id
                    )))
                }
                Err(MetaError::Unreachable { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        if acks >= needed {
            Ok(Round::Done(winner))
        } else {
            Ok(Round::NoQuorum { reachable, needed })
        }
    }

    /// Quorum-reads the record decided at `pos`: `Some(record)` once a
    /// majority holds one value, `None` if a majority answered and none of
    /// them has the position. A half-written position (its proposer died
    /// mid-flight) is repaired on the way: the record from the
    /// lowest-indexed written replica is copied to unwritten ones until a
    /// majority holds it.
    pub fn read_decided(&self, pos: Position) -> Result<Option<Bytes>> {
        let rtts_before = self.metrics.quorum_rtts.get();
        let decided = self.with_quorum_retry(|| self.read_round(pos))?;
        self.metrics.round_trips_per_op.record(self.metrics.quorum_rtts.get() - rtts_before);
        Ok(decided)
    }

    fn read_round(&self, pos: Position) -> Result<Round<Option<Bytes>>> {
        let replicas = self.replicas();
        let needed = quorum(replicas.len());
        let mut written: Vec<(usize, Bytes)> = Vec::new();
        let mut unwritten: Vec<usize> = Vec::new();
        for (idx, replica) in replicas.iter().enumerate() {
            match self.call_replica(replica, &MetaRequest::Read { pos }) {
                Ok(MetaResponse::Record(rec)) => written.push((idx, rec)),
                Ok(MetaResponse::Unwritten) => unwritten.push(idx),
                Ok(other) => {
                    return Err(MetaError::Protocol(format!(
                        "replica {} answered read with {other:?}",
                        replica.id
                    )))
                }
                Err(MetaError::Unreachable { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        let reachable = written.len() + unwritten.len();
        // Decided already?
        for (_, candidate) in &written {
            if written.iter().filter(|(_, r)| r == candidate).count() >= needed {
                self.metrics.reads.inc();
                return Ok(Round::Done(Some(candidate.clone())));
            }
        }
        if reachable < needed {
            return Ok(Round::NoQuorum { reachable, needed });
        }
        if written.is_empty() {
            // A majority answered and none has the position.
            return Ok(Round::Done(None));
        }
        // Half-written: complete the record from the lowest-indexed holder
        // (the arbitration rule writers follow), like data-plane chain
        // repair. Write-once cells make this race-safe against concurrent
        // proposers and other repairers.
        let value = written.iter().min_by_key(|(idx, _)| *idx).expect("non-empty").1.clone();
        let mut acks = written.iter().filter(|(_, r)| *r == value).count();
        let mut repaired = 0u64;
        for &idx in &unwritten {
            if acks >= needed {
                break;
            }
            match self
                .call_replica(&replicas[idx], &MetaRequest::Write { pos, record: value.clone() })
            {
                Ok(MetaResponse::Ok) => {
                    self.metrics.catchup_reads.inc();
                    repaired += 1;
                    acks += 1;
                }
                Ok(MetaResponse::AlreadyWritten(existing)) if existing == value => acks += 1,
                _ => {}
            }
        }
        if repaired > 0 {
            self.metrics.events.emit(tango_metrics::EventKind::QuorumRepair, pos, 0, repaired);
        }
        if acks >= needed {
            self.metrics.reads.inc();
            Ok(Round::Done(Some(value)))
        } else {
            Ok(Round::NoQuorum { reachable, needed })
        }
    }

    /// The highest decided position and its record. Tails are gathered from
    /// a majority; positions below the maximum tail that turn out undecided
    /// (a proposer died before any replica accepted) are skipped downward.
    pub fn latest(&self) -> Result<(Position, Bytes)> {
        let max_tail = self.with_quorum_retry(|| self.tail_round())?;
        if max_tail == 0 {
            return Err(MetaError::Empty);
        }
        for pos in (0..max_tail).rev() {
            if let Some(record) = self.read_decided(pos)? {
                return Ok((pos, record));
            }
        }
        Err(MetaError::Empty)
    }

    fn tail_round(&self) -> Result<Round<Position>> {
        let replicas = self.replicas();
        let needed = quorum(replicas.len());
        let mut tails = Vec::new();
        for replica in &replicas {
            match self.call_replica(replica, &MetaRequest::Tail) {
                Ok(MetaResponse::Tail(t)) => tails.push(t),
                Ok(other) => {
                    return Err(MetaError::Protocol(format!(
                        "replica {} answered tail with {other:?}",
                        replica.id
                    )))
                }
                Err(MetaError::Unreachable { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        if tails.len() >= needed {
            Ok(Round::Done(tails.into_iter().max().unwrap_or(0)))
        } else {
            Ok(Round::NoQuorum { reachable: tails.len(), needed })
        }
    }

    /// Copies every decided record onto the replica behind `target` (a
    /// fresh replacement catching up, or a stale rejoiner). Returns how
    /// many records were copied. Write-once cells make this idempotent and
    /// race-safe against live proposals.
    pub fn catch_up(&self, target: &Arc<dyn ClientConn>) -> Result<u64> {
        let (latest, _) = self.latest()?;
        let mut copied = 0u64;
        for pos in 0..=latest {
            let Some(record) = self.read_decided(pos)? else { continue };
            let resp = target
                .call(&encode_to_vec(&MetaRequest::Write { pos, record }))
                .map_err(|e| MetaError::Protocol(format!("catch-up target unreachable: {e}")))?;
            match decode_from_slice::<MetaResponse>(&resp)? {
                MetaResponse::Ok => {
                    self.metrics.catchup_reads.inc();
                    copied += 1;
                }
                MetaResponse::AlreadyWritten(_) => {}
                other => {
                    return Err(MetaError::Protocol(format!("catch-up write answered {other:?}")))
                }
            }
        }
        if copied > 0 {
            self.metrics.events.emit(tango_metrics::EventKind::QuorumRepair, latest, 0, copied);
        }
        Ok(copied)
    }

    /// Installs `peers` as the replica-set view on every reachable replica
    /// in `peers` (operations plane: run after replacing a crashed
    /// replica), then adopts it locally.
    pub fn install_peers(&self, peers: Vec<ReplicaInfo>) -> Result<()> {
        assert!(!peers.is_empty(), "a metalog needs at least one replica");
        let mut reached = 0usize;
        for replica in &peers {
            if let Ok(MetaResponse::Ok) =
                self.call_replica(replica, &MetaRequest::SetPeers(peers.clone()))
            {
                reached += 1;
            }
        }
        let needed = quorum(peers.len());
        if reached < needed {
            return Err(MetaError::QuorumUnavailable { reachable: reached, needed });
        }
        self.set_replicas(peers);
        Ok(())
    }
}
