//! Instrument bundles for the metalog (`meta.*`).

use tango_metrics::{Counter, Events, Histogram, Registry};

/// Client-side metalog instruments (`meta.*`). Control-plane traffic is
/// cold, so every observation is exact (no sampling).
#[derive(Clone, Default)]
pub struct MetaMetrics {
    /// Proposals attempted (one per `propose_at` call, not per retry).
    pub proposals: Counter,
    /// Proposals that installed this client's record.
    pub installs: Counter,
    /// Proposals that lost write-once arbitration to another record.
    pub conflicts: Counter,
    /// Decided quorum reads served (including those inside `latest`).
    pub reads: Counter,
    /// Replica round trips issued by quorum operations.
    pub quorum_rtts: Counter,
    /// Replica calls that failed and were skipped (the quorum carried on
    /// without that replica).
    pub failovers: Counter,
    /// Whole-quorum rounds retried after exponential backoff (also counts
    /// the single-node layout client's transport retries).
    pub retries: Counter,
    /// Records copied to lagging or fresh replicas (position repair and
    /// replacement catch-up).
    pub catchup_reads: Counter,
    /// Replica round trips needed per quorum operation.
    pub round_trips_per_op: Histogram,
    /// Control-plane event journal (quorum repairs, decided proposals).
    pub events: Events,
}

impl MetaMetrics {
    /// Binds the `meta.*` names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        Self {
            proposals: registry.counter("meta.proposals"),
            installs: registry.counter("meta.installs"),
            conflicts: registry.counter("meta.conflicts"),
            reads: registry.counter("meta.reads"),
            quorum_rtts: registry.counter("meta.quorum_rtts"),
            failovers: registry.counter("meta.failovers"),
            retries: registry.counter("meta.retries"),
            catchup_reads: registry.counter("meta.catchup_reads"),
            round_trips_per_op: registry.histogram("meta.round_trips_per_op"),
            events: registry.events(),
        }
    }
}

/// Replica-side metalog instruments (`meta.node.*`), exposed through each
/// layout node's scrape endpoint in the TCP harness.
#[derive(Clone, Default)]
pub struct MetaNodeMetrics {
    /// Records accepted (fresh write-once installs).
    pub writes: Counter,
    /// Write-once conflicts answered with the incumbent.
    pub write_conflicts: Counter,
    /// Record reads served (any outcome).
    pub reads: Counter,
    /// Tail queries served.
    pub tails: Counter,
    /// Requests rejected as malformed.
    pub malformed: Counter,
}

impl MetaNodeMetrics {
    /// Binds the `meta.node.*` names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        Self {
            writes: registry.counter("meta.node.writes"),
            write_conflicts: registry.counter("meta.node.write_conflicts"),
            reads: registry.counter("meta.node.reads"),
            tails: registry.counter("meta.node.tails"),
            malformed: registry.counter("meta.node.malformed"),
        }
    }
}
