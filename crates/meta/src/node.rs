//! One metalog replica: a write-once `position → record` store.

use std::collections::BTreeMap;

use bytes::Bytes;
use parking_lot::Mutex;
use tango_flash::{FlashUnit, PageRead};
use tango_metrics::Registry;
use tango_rpc::RpcHandler;
use tango_wire::{decode_from_slice, encode_to_vec};

use crate::metrics::MetaNodeMetrics;
use crate::proto::{MetaRequest, MetaResponse, ReplicaInfo};
use crate::Position;

/// A metalog replica. Positions are write-once: the first record installed
/// at a position is permanent, and a conflicting rewrite is answered with
/// the incumbent — the same arbitration rule the data plane's flash units
/// enforce, which is what lets the layout service dogfood the CORFU
/// discipline.
///
/// By default records live only in RAM (tests, in-process clusters). A
/// replica built with [`MetaNode::with_storage`] writes every record
/// through to a [`FlashUnit`] before acknowledging, and recovers its full
/// history from that unit on restart — the flash discipline is literally
/// the same one the data plane uses, metalog positions mapping one-to-one
/// onto page addresses.
pub struct MetaNode {
    records: Mutex<BTreeMap<Position, Bytes>>,
    /// Durable backing store; writes go here before the RAM index.
    storage: Option<Mutex<FlashUnit>>,
    peers: Mutex<Vec<ReplicaInfo>>,
    metrics: MetaNodeMetrics,
}

impl Default for MetaNode {
    fn default() -> Self {
        Self::new()
    }
}

impl MetaNode {
    /// An empty replica with disabled (no-op) instruments.
    pub fn new() -> Self {
        Self {
            records: Mutex::new(BTreeMap::new()),
            storage: None,
            peers: Mutex::new(Vec::new()),
            metrics: MetaNodeMetrics::default(),
        }
    }

    /// A replica persisting records onto `unit`, recovering every record
    /// already on it. Positions map directly to page addresses, so the
    /// unit's page size bounds the record size. Junk and trimmed pages are
    /// skipped: a metalog never trims, but a unit recycled from the data
    /// plane may carry them.
    pub fn with_storage(mut unit: FlashUnit) -> tango_flash::Result<Self> {
        let mut records = BTreeMap::new();
        for addr in 0..unit.local_tail() {
            if let PageRead::Data(bytes) = unit.read(addr)? {
                records.insert(addr, bytes);
            }
        }
        Ok(Self {
            records: Mutex::new(records),
            storage: Some(Mutex::new(unit)),
            peers: Mutex::new(Vec::new()),
            metrics: MetaNodeMetrics::default(),
        })
    }

    /// Binds this replica's `meta.node.*` instruments in `registry`.
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = MetaNodeMetrics::from_registry(registry);
        self
    }

    /// Installs `record` at position 0 directly (deployment bootstrap; not
    /// a client-visible operation). Panics if position 0 is taken by a
    /// different record — a deployment must not be bootstrapped twice with
    /// diverging genesis records.
    pub fn bootstrap(&self, record: Bytes) {
        let mut records = self.records.lock();
        match records.get(&0) {
            None => {
                if let Some(storage) = &self.storage {
                    storage.lock().write(0, &record).expect("persist genesis record");
                }
                records.insert(0, record);
            }
            Some(existing) => assert_eq!(existing, &record, "conflicting bootstrap record"),
        }
    }

    /// Replaces this replica's view of the replica set (operations plane).
    pub fn set_peers(&self, peers: Vec<ReplicaInfo>) {
        *self.peers.lock() = peers;
    }

    /// This replica's view of the replica set.
    pub fn peers(&self) -> Vec<ReplicaInfo> {
        self.peers.lock().clone()
    }

    /// Highest written position + 1 (0 when empty).
    pub fn tail(&self) -> Position {
        self.records.lock().last_key_value().map(|(p, _)| p + 1).unwrap_or(0)
    }

    /// Processes a decoded request.
    pub fn process(&self, req: MetaRequest) -> MetaResponse {
        match req {
            MetaRequest::Read { pos } => {
                self.metrics.reads.inc();
                match self.records.lock().get(&pos) {
                    Some(rec) => MetaResponse::Record(rec.clone()),
                    None => MetaResponse::Unwritten,
                }
            }
            MetaRequest::Write { pos, record } => {
                let mut records = self.records.lock();
                match records.get(&pos) {
                    None => {
                        // Durability before acknowledgement: the record
                        // must be on flash before any quorum counts it.
                        if let Some(storage) = &self.storage {
                            if let Err(e) = storage.lock().write(pos, &record) {
                                return MetaResponse::ErrStorage { reason: e.to_string() };
                            }
                        }
                        records.insert(pos, record);
                        self.metrics.writes.inc();
                        MetaResponse::Ok
                    }
                    // Re-writing the incumbent is an idempotent success, so
                    // helpers and retries converge without special cases.
                    Some(existing) if *existing == record => MetaResponse::Ok,
                    Some(existing) => {
                        self.metrics.write_conflicts.inc();
                        MetaResponse::AlreadyWritten(existing.clone())
                    }
                }
            }
            MetaRequest::Tail => {
                self.metrics.tails.inc();
                MetaResponse::Tail(self.tail())
            }
            MetaRequest::Peers => MetaResponse::Peers(self.peers()),
            MetaRequest::SetPeers(peers) => {
                self.set_peers(peers);
                MetaResponse::Ok
            }
        }
    }
}

impl RpcHandler for MetaNode {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        let response = match decode_from_slice::<MetaRequest>(request) {
            Ok(req) => self.process(req),
            Err(e) => {
                self.metrics.malformed.inc();
                MetaResponse::ErrMalformed { reason: e.to_string() }
            }
        };
        encode_to_vec(&response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_once_arbitration() {
        let node = MetaNode::new();
        let v1 = Bytes::from_static(b"v1");
        let v2 = Bytes::from_static(b"v2");
        assert_eq!(
            node.process(MetaRequest::Write { pos: 3, record: v1.clone() }),
            MetaResponse::Ok
        );
        // Idempotent rewrite.
        assert_eq!(
            node.process(MetaRequest::Write { pos: 3, record: v1.clone() }),
            MetaResponse::Ok
        );
        // Conflicting rewrite loses to the incumbent.
        assert_eq!(
            node.process(MetaRequest::Write { pos: 3, record: v2 }),
            MetaResponse::AlreadyWritten(v1.clone())
        );
        assert_eq!(node.process(MetaRequest::Read { pos: 3 }), MetaResponse::Record(v1));
        assert_eq!(node.process(MetaRequest::Read { pos: 0 }), MetaResponse::Unwritten);
        assert_eq!(node.process(MetaRequest::Tail), MetaResponse::Tail(4));
    }

    #[test]
    fn malformed_requests_get_a_typed_error() {
        let node = MetaNode::new();
        let resp = node.handle(&[0xFF, 0x01, 0x02]);
        match decode_from_slice::<MetaResponse>(&resp).unwrap() {
            MetaResponse::ErrMalformed { reason } => assert!(!reason.is_empty()),
            other => panic!("expected ErrMalformed, got {other:?}"),
        }
    }

    #[test]
    fn bootstrap_is_idempotent() {
        let node = MetaNode::new();
        node.bootstrap(Bytes::from_static(b"genesis"));
        node.bootstrap(Bytes::from_static(b"genesis"));
        assert_eq!(node.tail(), 1);
    }

    #[test]
    fn flash_backed_node_recovers_records_after_restart() {
        let dir = std::env::temp_dir().join(format!("tango-meta-node-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let open_unit = || {
            let store = tango_flash::FileStore::open(&dir, 1024, 16).unwrap();
            FlashUnit::open(Box::new(store), 1024).unwrap()
        };
        {
            let node = MetaNode::with_storage(open_unit()).unwrap();
            node.bootstrap(Bytes::from_static(b"genesis"));
            for pos in 1..5u64 {
                let record = Bytes::from(format!("projection-{pos}"));
                assert_eq!(node.process(MetaRequest::Write { pos, record }), MetaResponse::Ok);
            }
            assert_eq!(node.tail(), 5);
        }
        // "Restart": a fresh node over the same files sees the full
        // history, and write-once arbitration still holds across it.
        let node = MetaNode::with_storage(open_unit()).unwrap();
        assert_eq!(node.tail(), 5);
        node.bootstrap(Bytes::from_static(b"genesis")); // idempotent, not a rewrite
        for pos in 1..5u64 {
            assert_eq!(
                node.process(MetaRequest::Read { pos }),
                MetaResponse::Record(Bytes::from(format!("projection-{pos}")))
            );
        }
        assert_eq!(
            node.process(MetaRequest::Write { pos: 2, record: Bytes::from_static(b"usurper") }),
            MetaResponse::AlreadyWritten(Bytes::from_static(b"projection-2"))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
