//! Integration tests for the metalog: quorum writes/reads over an
//! in-process replica set, failover past dead replicas, half-written
//! repair, replacement catch-up, and peer discovery.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use tango_meta::proto::MetaRequest;
use tango_meta::{MetaClient, MetaError, MetaNode, MetaOptions, ReplicaInfo};
use tango_metrics::Registry;
use tango_rpc::{ClientConn, RpcError};

/// A connection that can be severed: while `alive` is false every call
/// fails as if the replica crashed.
struct SwitchConn {
    node: Arc<MetaNode>,
    alive: Arc<AtomicBool>,
}

impl ClientConn for SwitchConn {
    fn call(&self, request: &[u8]) -> tango_rpc::Result<Vec<u8>> {
        if !self.alive.load(Ordering::SeqCst) {
            return Err(RpcError::Disconnected);
        }
        Ok(tango_rpc::RpcHandler::handle(self.node.as_ref(), request))
    }
}

/// Three bootstrapped metalog replicas with per-replica kill switches.
struct TestSet {
    nodes: Vec<Arc<MetaNode>>,
    alive: Vec<Arc<AtomicBool>>,
    replicas: Vec<ReplicaInfo>,
}

impl TestSet {
    fn new(n: usize) -> Self {
        let genesis = Bytes::from_static(b"genesis");
        let nodes: Vec<Arc<MetaNode>> = (0..n).map(|_| Arc::new(MetaNode::new())).collect();
        let alive: Vec<Arc<AtomicBool>> = (0..n).map(|_| Arc::new(AtomicBool::new(true))).collect();
        let replicas: Vec<ReplicaInfo> =
            (0..n).map(|i| ReplicaInfo { id: i as u32, addr: format!("meta-{i}") }).collect();
        for node in &nodes {
            node.bootstrap(genesis.clone());
            node.set_peers(replicas.clone());
        }
        Self { nodes, alive, replicas }
    }

    fn dial(&self) -> Arc<dyn tango_meta::Dial> {
        let nodes = self.nodes.clone();
        let alive = self.alive.clone();
        Arc::new(move |replica: &ReplicaInfo| -> Arc<dyn ClientConn> {
            let idx = replica.id as usize;
            Arc::new(SwitchConn { node: Arc::clone(&nodes[idx]), alive: Arc::clone(&alive[idx]) })
        })
    }

    fn client(&self) -> MetaClient {
        MetaClient::new(self.replicas.clone(), self.dial())
    }

    fn fast_client(&self, max_retries: u32) -> MetaClient {
        let opts = MetaOptions {
            max_retries,
            backoff_base: std::time::Duration::from_micros(10),
            backoff_max: std::time::Duration::from_micros(100),
        };
        MetaClient::with_options(self.replicas.clone(), self.dial(), opts)
    }

    fn kill(&self, idx: usize) {
        self.alive[idx].store(false, Ordering::SeqCst);
    }
}

#[test]
fn propose_install_read_latest() {
    let set = TestSet::new(3);
    let client = set.client();
    let rec = Bytes::from_static(b"epoch-1");
    assert_eq!(client.propose_at(1, rec.clone()).unwrap(), None);
    assert_eq!(client.read_decided(1).unwrap(), Some(rec.clone()));
    assert_eq!(client.latest().unwrap(), (1, rec.clone()));
    // Every replica holds the record: the proposer writes past a quorum.
    for node in &set.nodes {
        assert_eq!(
            node.process(MetaRequest::Read { pos: 1 }),
            tango_meta::proto::MetaResponse::Record(rec.clone())
        );
    }
}

#[test]
fn propose_survives_one_dead_replica() {
    let set = TestSet::new(3);
    let registry = Registry::new();
    let client = set.client().with_metrics(&registry);
    set.kill(1);
    let rec = Bytes::from_static(b"epoch-1");
    assert_eq!(client.propose_at(1, rec.clone()).unwrap(), None);
    assert_eq!(client.read_decided(1).unwrap(), Some(rec));
    assert!(client.metrics().failovers.get() > 0, "dead replica should count as failover");
    assert_eq!(client.metrics().installs.get(), 1);
}

#[test]
fn losing_quorum_surfaces_after_bounded_retries() {
    let set = TestSet::new(3);
    let registry = Registry::new();
    let client = set.fast_client(2).with_metrics(&registry);
    set.kill(1);
    set.kill(2);
    match client.propose_at(1, Bytes::from_static(b"doomed")) {
        Err(MetaError::QuorumUnavailable { reachable, needed }) => {
            assert_eq!(reachable, 1);
            assert_eq!(needed, 2);
        }
        other => panic!("expected QuorumUnavailable, got {other:?}"),
    }
    assert_eq!(client.metrics().retries.get(), 2, "one retry per budgeted round");
}

#[test]
fn write_once_arbitration_returns_the_winner() {
    let set = TestSet::new(3);
    let winner = Bytes::from_static(b"winner");
    let loser = Bytes::from_static(b"loser");
    assert_eq!(set.client().propose_at(1, winner.clone()).unwrap(), None);
    // A second proposal at the same position loses and observes the winner.
    assert_eq!(set.client().propose_at(1, loser).unwrap(), Some(winner.clone()));
    assert_eq!(set.client().read_decided(1).unwrap(), Some(winner));
}

#[test]
fn adopting_proposer_completes_a_half_written_position() {
    let set = TestSet::new(3);
    let v1 = Bytes::from_static(b"half-written");
    // A proposer crashed after reaching only replica 0 (the arbitrator).
    set.nodes[0].process(MetaRequest::Write { pos: 1, record: v1.clone() });
    // A later proposer adopts the incumbent and copies it to a majority.
    let client = set.client();
    assert_eq!(client.propose_at(1, Bytes::from_static(b"mine")).unwrap(), Some(v1.clone()));
    assert_eq!(client.read_decided(1).unwrap(), Some(v1));
}

#[test]
fn quorum_read_repairs_a_half_written_position() {
    let set = TestSet::new(3);
    let v1 = Bytes::from_static(b"repair-me");
    set.nodes[0].process(MetaRequest::Write { pos: 1, record: v1.clone() });
    let registry = Registry::new();
    let client = set.client().with_metrics(&registry);
    assert_eq!(client.read_decided(1).unwrap(), Some(v1.clone()));
    assert!(client.metrics().catchup_reads.get() > 0, "repair copies count as catch-up");
    // The repair reached a majority: a read that skips replica 0 still decides.
    set.kill(0);
    assert_eq!(set.client().read_decided(1).unwrap(), Some(v1));
}

#[test]
fn latest_rolls_forward_a_reachable_stray_but_skips_an_unreachable_one() {
    let set = TestSet::new(3);
    let client = set.client();
    let rec = Bytes::from_static(b"epoch-1");
    client.propose_at(1, rec.clone()).unwrap();
    // Replica 2 holds a stray record at position 5 whose proposer died
    // before reaching a quorum. While replica 2 is reachable, quorum reads
    // resolve the ambiguity by completing the write (roll-forward), so
    // latest() surfaces it as decided.
    let stray = Bytes::from_static(b"stray");
    set.nodes[2].process(MetaRequest::Write { pos: 5, record: stray.clone() });
    assert_eq!(client.latest().unwrap(), (5, stray));
    // But if the only holder dies after reporting its tail, the position
    // reads as undecided (a majority answers "unwritten") and latest()
    // skips downward to the newest decided record.
    let set2 = TestSet::new(3);
    let client2 = set2.client();
    client2.propose_at(1, rec.clone()).unwrap();
    set2.nodes[2].process(MetaRequest::Write { pos: 5, record: Bytes::from_static(b"stray") });
    // Replica 2 answers exactly one call (the tail query), then dies. The
    // conns are built once so a re-dial cannot resurrect the budget.
    let conns: Vec<Arc<dyn ClientConn>> = set2
        .nodes
        .iter()
        .enumerate()
        .map(|(idx, node)| -> Arc<dyn ClientConn> {
            let budget = if idx == 2 { 1 } else { i64::MAX };
            Arc::new(BudgetConn {
                node: Arc::clone(node),
                remaining: std::sync::atomic::AtomicI64::new(budget),
            })
        })
        .collect();
    let dying = MetaClient::new(
        set2.replicas.clone(),
        Arc::new(move |replica: &ReplicaInfo| Arc::clone(&conns[replica.id as usize])),
    );
    assert_eq!(dying.latest().unwrap(), (1, rec));
}

/// A connection that serves a fixed number of calls, then fails forever —
/// models a replica crashing partway through a multi-round operation.
struct BudgetConn {
    node: Arc<MetaNode>,
    remaining: std::sync::atomic::AtomicI64,
}

impl ClientConn for BudgetConn {
    fn call(&self, request: &[u8]) -> tango_rpc::Result<Vec<u8>> {
        if self.remaining.fetch_sub(1, Ordering::SeqCst) <= 0 {
            return Err(RpcError::Disconnected);
        }
        Ok(tango_rpc::RpcHandler::handle(self.node.as_ref(), request))
    }
}

#[test]
fn replacement_catches_up_from_the_quorum() {
    let set = TestSet::new(3);
    let client = set.client();
    for epoch in 1..=4u64 {
        client.propose_at(epoch, Bytes::from(format!("epoch-{epoch}"))).unwrap();
    }
    let fresh = Arc::new(MetaNode::new());
    let conn: Arc<dyn ClientConn> =
        Arc::new(SwitchConn { node: Arc::clone(&fresh), alive: Arc::new(AtomicBool::new(true)) });
    let copied = client.catch_up(&conn).unwrap();
    assert_eq!(copied, 5, "genesis + 4 epochs");
    assert_eq!(fresh.tail(), 5);
}

#[test]
fn discovery_adopts_the_replicas_view() {
    let set = TestSet::new(3);
    // A client configured with a stale, single-replica view discovers the
    // full set from that replica's peer list.
    let stale = MetaClient::new(vec![set.replicas[0].clone()], set.dial());
    assert!(stale.discover());
    assert_eq!(stale.replicas(), set.replicas);
    assert!(!stale.discover(), "second discovery is a no-op");
}

#[test]
fn install_peers_updates_every_replica_and_the_client() {
    let set = TestSet::new(3);
    let client = set.client();
    // Replica 1 crashed and was replaced by a fresh node with a new id.
    set.kill(1);
    let replacement = Arc::new(MetaNode::new());
    let mut new_set = set.replicas.clone();
    new_set[1] = ReplicaInfo { id: 7, addr: "meta-7".into() };
    let dial_set = new_set.clone();
    // Re-dial through a map that knows the replacement.
    let nodes = set.nodes.clone();
    let alive = set.alive.clone();
    let repl = Arc::clone(&replacement);
    let dial = Arc::new(move |replica: &ReplicaInfo| -> Arc<dyn ClientConn> {
        if replica.id == 7 {
            return Arc::new(SwitchConn {
                node: Arc::clone(&repl),
                alive: Arc::new(AtomicBool::new(true)),
            });
        }
        let idx = replica.id as usize;
        Arc::new(SwitchConn { node: Arc::clone(&nodes[idx]), alive: Arc::clone(&alive[idx]) })
    });
    let client2 = MetaClient::new(client.replicas(), dial);
    client2
        .catch_up(
            &client2
                .replicas()
                .first()
                .map(|_| -> Arc<dyn ClientConn> {
                    Arc::new(SwitchConn {
                        node: Arc::clone(&replacement),
                        alive: Arc::new(AtomicBool::new(true)),
                    })
                })
                .unwrap(),
        )
        .unwrap();
    client2.install_peers(dial_set.clone()).unwrap();
    assert_eq!(client2.replicas(), dial_set);
    assert_eq!(set.nodes[0].peers(), dial_set);
    assert_eq!(replacement.peers(), dial_set);
    // The refreshed set serves proposals.
    assert_eq!(client2.propose_at(1, Bytes::from_static(b"after")).unwrap(), None);
}

#[test]
fn stale_client_rides_through_replacement_via_rediscovery() {
    let set = TestSet::new(3);
    let replacement = Arc::new(MetaNode::new());
    // Dial that knows both generations.
    let nodes = set.nodes.clone();
    let alive = set.alive.clone();
    let repl = Arc::clone(&replacement);
    let dial = Arc::new(move |replica: &ReplicaInfo| -> Arc<dyn ClientConn> {
        if replica.id == 7 {
            return Arc::new(SwitchConn {
                node: Arc::clone(&repl),
                alive: Arc::new(AtomicBool::new(true)),
            });
        }
        let idx = replica.id as usize;
        Arc::new(SwitchConn { node: Arc::clone(&nodes[idx]), alive: Arc::clone(&alive[idx]) })
    });
    // Operator replaces replica 2 and installs the new peer set.
    let ops = MetaClient::new(set.replicas.clone(), dial.clone());
    set.kill(2);
    let conn: Arc<dyn ClientConn> = Arc::new(SwitchConn {
        node: Arc::clone(&replacement),
        alive: Arc::new(AtomicBool::new(true)),
    });
    ops.catch_up(&conn).unwrap();
    let mut new_set = set.replicas.clone();
    new_set[2] = ReplicaInfo { id: 7, addr: "meta-7".into() };
    ops.install_peers(new_set.clone()).unwrap();
    // A client still holding the old view: kill another old replica so the
    // old view cannot reach a quorum without the replacement, and watch the
    // retry loop rediscover the new set.
    set.kill(1);
    let stale = MetaClient::with_options(
        set.replicas.clone(),
        dial,
        MetaOptions {
            max_retries: 3,
            backoff_base: std::time::Duration::from_micros(10),
            backoff_max: std::time::Duration::from_micros(100),
        },
    );
    assert_eq!(stale.propose_at(1, Bytes::from_static(b"ride")).unwrap(), None);
    assert_eq!(stale.replicas(), new_set);
}
