//! Sanity checks on the experiment models: determinism, and the coarse
//! shapes the paper reports (plateaus, saturation points, goodput ordering).
//! The full sweeps run from the `tango-bench` binaries.

use simcluster::experiments;

#[test]
fn fig2_deterministic_and_plateaus() {
    let a = experiments::fig2_sequencer(4, 8, 1, 1);
    let b = experiments::fig2_sequencer(4, 8, 1, 1);
    assert_eq!(a, b, "same seed must reproduce exactly");

    let few = experiments::fig2_sequencer(2, 8, 1, 1);
    let mid = experiments::fig2_sequencer(16, 8, 1, 1);
    let many = experiments::fig2_sequencer(36, 8, 1, 1);
    // Throughput grows with clients, then plateaus near 1/service_time
    // (~571K/s).
    assert!(few < mid, "few={few} mid={mid}");
    assert!(many > 450.0 && many < 620.0, "plateau at {many}K/s");
    // Batching multiplies the ceiling.
    let batched = experiments::fig2_sequencer(36, 8, 4, 1);
    assert!(batched > 1_500.0, "batched plateau at {batched}K/s");
}

#[test]
fn fig8_left_read_write_asymmetry() {
    let (read_tput, read_lat, _) = experiments::fig8_left(0.0, 64, 7);
    let (write_tput, write_lat, _) = experiments::fig8_left(1.0, 64, 7);
    // Reads (sequencer checks) are much faster than writes (chain appends).
    assert!(read_tput > write_tput, "reads {read_tput}K < writes {write_tput}K");
    assert!(read_lat < write_lat, "read lat {read_lat}ms, write lat {write_lat}ms");
    assert!(read_tput > 60.0, "read throughput too low: {read_tput}K/s");
    assert!(write_tput > 10.0, "write throughput too low: {write_tput}K/s");
}

#[test]
fn fig8_middle_total_is_stable() {
    let (r0, _, lat0) = experiments::fig8_middle(0.0, 3);
    let (r40, w40, lat40) = experiments::fig8_middle(40_000.0, 3);
    // With no writes the reader runs at its target; with 40K writes/s the
    // reader still completes reads but pays playback latency.
    assert!(r0 > 90.0, "unloaded reads {r0}K/s");
    assert!(w40 > 35.0, "writes {w40}K/s");
    assert!(r40 > 5.0, "loaded reads {r40}K/s");
    assert!(lat40 > lat0, "read latency must rise with write load");
}

#[test]
fn fig9_playback_bottleneck_and_contention() {
    // Throughput plateaus as nodes are added (playback-bound), and goodput
    // collapses with tiny key spaces under zipf.
    let (tput3, good3) = experiments::fig9(3, 100_000, false, 11);
    let (tput6, _good6) = experiments::fig9(6, 100_000, false, 11);
    assert!(tput3 > 20.0, "3-node throughput {tput3}K");
    // Playback bottleneck: adding nodes does not scale throughput.
    assert!(
        tput6 < tput3 * 1.5,
        "playback bottleneck violated: 3 nodes {tput3}K, 6 nodes {tput6}K"
    );
    // Uniform @ 100K keys: goodput ~ throughput.
    assert!(good3 > tput3 * 0.9, "goodput {good3}K vs {tput3}K");
    // Zipf @ 100 keys: heavy conflicts.
    let (tput_hot, good_hot) = experiments::fig9(3, 100, true, 11);
    assert!(good_hot < tput_hot * 0.8, "expected contention: goodput {good_hot}K of {tput_hot}K");
}

#[test]
fn fig10_left_scales_until_log_saturates() {
    let t4 = experiments::fig10_left(4, 9, 21);
    let t10 = experiments::fig10_left(10, 9, 21);
    assert!(t10 > t4 * 1.8, "partitioned txs must scale: 4cl={t4}K 10cl={t10}K");
}

#[test]
fn fig10_middle_cross_partition_degrades_gracefully() {
    let t0 = experiments::fig10_middle_tango(8, 0.0, 31);
    let t16 = experiments::fig10_middle_tango(8, 16.0, 31);
    let t100 = experiments::fig10_middle_tango(8, 100.0, 31);
    assert!(t0 > t16, "0% {t0}K should beat 16% {t16}K");
    assert!(t16 > t100, "16% {t16}K should beat 100% {t100}K");
    assert!(t100 > t0 * 0.12, "degradation should be graceful: {t100}K vs {t0}K");

    let p0 = experiments::fig10_middle_2pl(8, 0.0, 31);
    let p100 = experiments::fig10_middle_2pl(8, 100.0, 31);
    assert!(p0 > 10.0, "2PL base {p0}K");
    assert!(p100 < p0, "2PL must degrade with cross-partition txs");
}

#[test]
fn fig10_right_shared_object_cliff() {
    let t0 = experiments::fig10_right(4, 0.0, 41);
    let t1 = experiments::fig10_right(4, 1.0, 41);
    let t64 = experiments::fig10_right(4, 64.0, 41);
    // The paper: "throughput falls sharply going from 0% to 1%, after
    // which it degrades gracefully".
    assert!(t1 < t0, "1% shared {t1}K should be below 0% {t0}K");
    assert!(t64 < t1, "64% {t64}K should be below 1% {t1}K");
}
