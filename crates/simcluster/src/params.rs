use simnet::{SimTime, US};

/// Calibrated model of the paper's testbed (§6: "36 8-core machines in two
/// racks, with gigabit NICs on each node and 20 Gbps between the
/// top-of-rack switches"; 18 storage nodes in a 9x2 CORFU configuration;
/// 4KB log entries; a batch of 4 commit records per entry).
///
/// Derivation of the service times (documented per EXPERIMENTS.md):
///
/// * `seq_service` ≈ 1.75µs — Figure 2 reports the sequencer plateauing at
///   ~570K tokens/s without batching.
/// * `storage_read_service` = 17µs — ~60K 4KB reads/s per node; recently
///   appended entries are served from the SSD's (and OS's) cache, far
///   above the X25-V's cold random-read rating. Figure 8 (right) then
///   saturates a 2-replica log at ~120K reads/s, as the paper reports.
/// * `storage_write_service` = 80µs — ~12.5K 4KB writes/s per node (each
///   node carries two X25-Vs; the write-once pattern is FTL-friendly).
/// * `client_op_cpu` = 7µs — Figure 8 (left) tops out around 135K
///   check-only reads/s on one client.
/// * `apply_cost` = 20µs per record and `entry_fetch_cpu` = 5µs per entry —
///   §6.2 reports the playback bottleneck capping a fully replicated
///   TangoMap at ~40K txes/s per consuming client (10K 4KB entries/s).
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Number of replica sets (9 in the paper's deployment).
    pub num_sets: usize,
    /// Replicas per set (2 in the paper).
    pub replication: usize,
    /// Log entry size in bytes (4KB).
    pub entry_bytes: u64,
    /// Commit records batched per entry (4 in the paper).
    pub batch: usize,
    /// Sequencer service time per token/query.
    pub seq_service: SimTime,
    /// Storage node 4KB read service time.
    pub storage_read_service: SimTime,
    /// Storage node 4KB write service time.
    pub storage_write_service: SimTime,
    /// Client CPU cost to issue/process one small RPC.
    pub client_op_cpu: SimTime,
    /// Client CPU cost to apply one commit/update record during playback.
    pub apply_cost: SimTime,
    /// Client CPU cost to apply one decision record (a map update, far
    /// cheaper than replaying a commit record's buffered writes).
    pub decision_apply_cost: SimTime,
    /// Client CPU cost to ingest one fetched entry.
    pub entry_fetch_cpu: SimTime,
    /// Bytes a storage read response carries on the wire: the entry's
    /// actual payload, not the fixed page size (a register update is tiny;
    /// a batch of commit records approaches the full 4KB).
    pub read_resp_bytes: u64,
    /// Small RPC size (token/check/ack messages).
    pub small_msg_bytes: u64,
    /// How often idle clients sync with the sequencer.
    pub sync_interval: SimTime,
    /// Outstanding playback fetches per client.
    pub fetch_window: usize,
}

impl ClusterParams {
    /// The paper's 18-node, 9x2 deployment.
    pub fn paper_testbed() -> Self {
        Self {
            num_sets: 9,
            replication: 2,
            entry_bytes: 4096,
            batch: 4,
            seq_service: 1_750, // ns
            storage_read_service: 17 * US,
            storage_write_service: 80 * US,
            client_op_cpu: 7 * US,
            apply_cost: 20 * US,
            decision_apply_cost: 4 * US,
            entry_fetch_cpu: 5 * US,
            read_resp_bytes: 4096,
            small_msg_bytes: 64,
            sync_interval: 500_000, // 0.5 ms
            fetch_window: 64,
        }
    }

    /// Same parameters over a smaller log (`num_sets` replica sets), used
    /// for the 2-server and 6-server comparisons in Figures 8 and 10.
    pub fn with_sets(mut self, num_sets: usize) -> Self {
        self.num_sets = num_sets;
        self
    }

    /// Sets the on-wire size of read responses (entry payloads): small for
    /// register workloads, near the page size for batched commit records.
    pub fn with_read_resp_bytes(mut self, bytes: u64) -> Self {
        self.read_resp_bytes = bytes;
        self
    }

    /// Total storage nodes.
    pub fn storage_nodes(&self) -> usize {
        self.num_sets * self.replication
    }
}
