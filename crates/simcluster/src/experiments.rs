//! Scenario builders: one function per figure of §6.
//!
//! Each builds the modeled cluster (storage nodes, sequencer, clients with
//! the right behavior), runs a warmup, measures a steady-state interval,
//! and returns the series the paper plots. Binaries in `tango-bench` call
//! these and print the rows.

use std::cell::RefCell;
use std::rc::Rc;

use simnet::{LinkLatency, NodeConfig, Sim, SimTime, MS, SEC};
use workload::{KeyDist, TxMix};

use crate::log_model::OccLog;
use crate::msg::Msg;
use crate::params::ClusterParams;
use crate::seq_bench::SeqBenchClient;
use crate::storage::{SequencerActor, StorageActor};
use crate::tango_client::{Behavior, ClientStats, TangoClientActor, TxTarget};
use crate::twopl_model::{OracleActor, TwoPlClientActor, TwoPlShared};

/// A built cluster skeleton.
struct Cluster {
    sim: Sim<Msg>,
    sequencer: simnet::ActorId,
    storage: Vec<Vec<simnet::ActorId>>,
    log: Rc<RefCell<OccLog>>,
}

fn build_cluster(params: &ClusterParams, seq_batching: u64) -> Cluster {
    let mut sim: Sim<Msg> = Sim::new(LinkLatency::lan());
    let log = Rc::new(RefCell::new(OccLog::new()));
    // Storage nodes: half in each rack, like the paper's testbed.
    let mut storage = Vec::new();
    let mut node_idx = 0u8;
    for _ in 0..params.num_sets {
        let mut chain = Vec::new();
        for r in 0..params.replication {
            let node = sim.add_node(NodeConfig::gigabit(if r == 0 { 0 } else { 1 }));
            let actor = sim.add_actor(node, Box::new(StorageActor::new(params, Rc::clone(&log))));
            chain.push(actor);
            node_idx = node_idx.wrapping_add(1);
        }
        storage.push(chain);
    }
    // The sequencer: a beefy machine in its own rack position.
    let seq_node = sim.add_node(NodeConfig::ten_gigabit(0));
    let sequencer = sim.add_actor(seq_node, Box::new(SequencerActor::new(params, seq_batching)));
    Cluster { sim, sequencer, storage, log }
}

fn add_tango_client(
    cluster: &mut Cluster,
    params: &ClusterParams,
    behavior: Behavior,
    hosted: Vec<u32>,
    seed: u64,
    rack: u8,
) -> Rc<RefCell<ClientStats>> {
    let stats = ClientStats::shared();
    let node = cluster.sim.add_node(NodeConfig::gigabit(rack));
    let actor = TangoClientActor::new(
        params,
        behavior,
        seed,
        cluster.sequencer,
        cluster.storage.clone(),
        Rc::clone(&cluster.log),
        Rc::clone(&stats),
        hosted,
    );
    cluster.sim.add_actor(node, Box::new(actor));
    stats
}

#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    reads: u64,
    writes: u64,
    committed: u64,
    aborted: u64,
}

fn snap(stats: &[Rc<RefCell<ClientStats>>]) -> Snapshot {
    let mut s = Snapshot::default();
    for st in stats {
        let st = st.borrow();
        s.reads += st.reads_done;
        s.writes += st.writes_done;
        s.committed += st.tx_committed;
        s.aborted += st.tx_aborted;
    }
    s
}

/// Runs warmup then a measured interval; returns (delta, interval seconds).
fn measure(
    sim: &mut Sim<Msg>,
    stats: &[Rc<RefCell<ClientStats>>],
    warmup: SimTime,
    interval: SimTime,
) -> (Snapshot, f64) {
    sim.run_until(warmup);
    let before = snap(stats);
    sim.run_until(warmup + interval);
    let after = snap(stats);
    let delta = Snapshot {
        reads: after.reads - before.reads,
        writes: after.writes - before.writes,
        committed: after.committed - before.committed,
        aborted: after.aborted - before.aborted,
    };
    (delta, interval as f64 / SEC as f64)
}

// ----------------------------------------------------------------------
// Figure 2: sequencer throughput vs number of clients.
// ----------------------------------------------------------------------

/// One Figure 2 data point: thousands of token requests per second
/// sustained by the sequencer with `clients` closed-loop clients.
pub fn fig2_sequencer(clients: usize, window: usize, batching: u64, _seed: u64) -> f64 {
    let params = ClusterParams::paper_testbed();
    let mut sim: Sim<Msg> = Sim::new(LinkLatency::lan());
    let seq_node = sim.add_node(NodeConfig::ten_gigabit(0));
    let sequencer = sim.add_actor(seq_node, Box::new(SequencerActor::new(&params, batching)));
    let completed = Rc::new(std::cell::Cell::new(0u64));
    for i in 0..clients {
        let node = sim.add_node(NodeConfig::gigabit((i % 2) as u8));
        sim.add_actor(
            node,
            Box::new(SeqBenchClient::new(&params, sequencer, window, Rc::clone(&completed))),
        );
    }
    sim.run_until(200 * MS);
    let t0 = completed.get();
    sim.run_until(1_200 * MS);
    let t1 = completed.get();
    (t1 - t0) as f64 / 1_000.0
}

// ----------------------------------------------------------------------
// Figure 8: single-object linearizability.
// ----------------------------------------------------------------------

/// One Figure 8 (left) point: a single client/view with `window`
/// outstanding ops at `write_ratio`. Returns (Ks of ops/sec, mean latency
/// ms, p99 latency ms).
pub fn fig8_left(write_ratio: f64, window: usize, seed: u64) -> (f64, f64, f64) {
    let params = ClusterParams::paper_testbed();
    let mut cluster = build_cluster(&params, 1);
    let stats = add_tango_client(
        &mut cluster,
        &params,
        Behavior::ClosedLoopOps { window, write_ratio },
        vec![0],
        seed,
        0,
    );
    let (delta, secs) = measure(&mut cluster.sim, &[Rc::clone(&stats)], 500 * MS, 2 * SEC);
    let ops = (delta.reads + delta.writes) as f64 / secs / 1_000.0;
    let st = stats.borrow();
    let mut all = st.read_latency.clone();
    all.merge(&st.write_latency);
    let mean_ms = all.mean() / MS as f64;
    let p99_ms = all.percentile(0.99) as f64 / MS as f64;
    (ops, mean_ms, p99_ms)
}

/// One Figure 8 (middle) point: all writes to one client, all reads to the
/// other. Returns (read Ks/sec, write Ks/sec, mean read latency ms).
pub fn fig8_middle(target_write_ops_per_sec: f64, seed: u64) -> (f64, f64, f64) {
    let params = ClusterParams::paper_testbed().with_read_resp_bytes(256);
    let entries_per_sec = (target_write_ops_per_sec / params.batch as f64).max(0.001);
    let mut cluster = build_cluster(&params, 1);
    let writer = add_tango_client(
        &mut cluster,
        &params,
        Behavior::OpenLoopAppender { entries_per_sec },
        vec![0],
        seed,
        0,
    );
    let reader = add_tango_client(
        &mut cluster,
        &params,
        Behavior::SyncReader { reads_per_sec: 100_000.0, max_outstanding: 64 },
        vec![0],
        seed + 1,
        1,
    );
    let all = [Rc::clone(&writer), Rc::clone(&reader)];
    let (delta, secs) = measure(&mut cluster.sim, &all, 500 * MS, 2 * SEC);
    let read_ks = delta.reads as f64 / secs / 1_000.0;
    let write_ks = delta.writes as f64 / secs / 1_000.0;
    let read_lat_ms = reader.borrow().read_latency.mean() / MS as f64;
    (read_ks, write_ks, read_lat_ms)
}

/// One Figure 8 (right) point: `readers` clients each targeting 10K
/// linearizable reads/sec against a 10K ops/sec write load, over a log
/// with `num_sets` replica sets (x `replication`). Returns aggregate Ks of
/// reads/sec.
pub fn fig8_right(readers: usize, num_sets: usize, seed: u64) -> f64 {
    // Register entries are tiny; read responses carry the payload.
    let params = ClusterParams::paper_testbed().with_sets(num_sets).with_read_resp_bytes(256);
    let mut cluster = build_cluster(&params, 1);
    let entries_per_sec = 10_000.0 / params.batch as f64;
    let _writer = add_tango_client(
        &mut cluster,
        &params,
        Behavior::OpenLoopAppender { entries_per_sec },
        vec![0],
        seed,
        0,
    );
    let mut reader_stats = Vec::new();
    for i in 0..readers {
        reader_stats.push(add_tango_client(
            &mut cluster,
            &params,
            Behavior::DirectReader { reads_per_sec: 10_000.0, max_outstanding: 32 },
            vec![0],
            seed + 10 + i as u64,
            (i % 2) as u8,
        ));
    }
    let (delta, secs) = measure(&mut cluster.sim, &reader_stats, 500 * MS, 2 * SEC);
    delta.reads as f64 / secs / 1_000.0
}

// ----------------------------------------------------------------------
// Figure 9: transactions on a fully replicated TangoMap.
// ----------------------------------------------------------------------

/// One Figure 9 point. Returns (Ks tx/sec throughput, Ks tx/sec goodput).
pub fn fig9(nodes: usize, total_keys: u64, zipf: bool, seed: u64) -> (f64, f64) {
    let params = ClusterParams::paper_testbed();
    let mut cluster = build_cluster(&params, 1);
    let dist = if zipf { KeyDist::zipf_ycsb(total_keys) } else { KeyDist::uniform(total_keys) };
    let mut stats = Vec::new();
    for i in 0..nodes {
        stats.push(add_tango_client(
            &mut cluster,
            &params,
            Behavior::OccTx {
                window: 16,
                mix: TxMix::paper(dist.clone()),
                target: TxTarget::SingleMap { oid: 0 },
                decision_records: false,
            },
            vec![0],
            seed + i as u64,
            (i % 2) as u8,
        ));
    }
    let (delta, secs) = measure(&mut cluster.sim, &stats, 500 * MS, 2 * SEC);
    let tput = (delta.committed + delta.aborted) as f64 / secs / 1_000.0;
    let goodput = delta.committed as f64 / secs / 1_000.0;
    (tput, goodput)
}

/// Ablation: Figure 9's setup with a configurable commit-record batch size
/// (the paper uses 4 per 4KB entry). Returns (Ks tx/s, Ks goodput/s).
pub fn fig9_with_batch(nodes: usize, total_keys: u64, batch: usize, seed: u64) -> (f64, f64) {
    let mut params = ClusterParams::paper_testbed();
    params.batch = batch;
    let mut cluster = build_cluster(&params, 1);
    let dist = KeyDist::uniform(total_keys);
    let mut stats = Vec::new();
    for i in 0..nodes {
        stats.push(add_tango_client(
            &mut cluster,
            &params,
            Behavior::OccTx {
                window: 16,
                mix: TxMix::paper(dist.clone()),
                target: TxTarget::SingleMap { oid: 0 },
                decision_records: false,
            },
            vec![0],
            seed + i as u64,
            (i % 2) as u8,
        ));
    }
    let (delta, secs) = measure(&mut cluster.sim, &stats, 500 * MS, 2 * SEC);
    let tput = (delta.committed + delta.aborted) as f64 / secs / 1_000.0;
    let goodput = delta.committed as f64 / secs / 1_000.0;
    (tput, goodput)
}

// ----------------------------------------------------------------------
// Figure 10: layered partitions.
// ----------------------------------------------------------------------

/// One Figure 10 (left) point: `clients` clients, each hosting its own
/// TangoMap and running single-object transactions, over a log with
/// `num_sets` sets. Returns Ks tx/sec.
///
/// The window of 8 outstanding transactions calibrates per-client rates to
/// the paper's ~11K tx/s/client (its measured transaction latency was in
/// the milliseconds; the model's log round-trips are faster).
pub fn fig10_left(clients: usize, num_sets: usize, seed: u64) -> f64 {
    let params = ClusterParams::paper_testbed().with_sets(num_sets);
    let mut cluster = build_cluster(&params, 1);
    let mut stats = Vec::new();
    for i in 0..clients {
        stats.push(add_tango_client(
            &mut cluster,
            &params,
            Behavior::OccTx {
                window: 8,
                mix: TxMix::paper(KeyDist::uniform(100_000)),
                target: TxTarget::SingleMap { oid: i as u32 },
                decision_records: false,
            },
            vec![i as u32],
            seed + i as u64,
            (i % 2) as u8,
        ));
    }
    let (delta, secs) = measure(&mut cluster.sim, &stats, 500 * MS, 2 * SEC);
    (delta.committed + delta.aborted) as f64 / secs / 1_000.0
}

/// One Figure 10 (middle) point for Tango: 18 partitioned clients;
/// `cross_pct` of transactions also write one remote partition (with a
/// decision record). Returns Ks tx/sec.
pub fn fig10_middle_tango(clients: usize, cross_pct: f64, seed: u64) -> f64 {
    let params = ClusterParams::paper_testbed();
    let mut cluster = build_cluster(&params, 1);
    let all: Vec<u32> = (0..clients as u32).collect();
    let mut stats = Vec::new();
    for i in 0..clients {
        let others: Vec<u32> = all.iter().copied().filter(|&o| o != i as u32).collect();
        stats.push(add_tango_client(
            &mut cluster,
            &params,
            Behavior::OccTx {
                window: 8,
                mix: TxMix::paper(KeyDist::uniform(100_000)),
                target: TxTarget::CrossPartition {
                    local: i as u32,
                    others,
                    cross_prob: cross_pct / 100.0,
                },
                decision_records: true,
            },
            vec![i as u32],
            seed + i as u64,
            (i % 2) as u8,
        ));
    }
    let (delta, secs) = measure(&mut cluster.sim, &stats, 500 * MS, 2 * SEC);
    (delta.committed + delta.aborted) as f64 / secs / 1_000.0
}

/// One Figure 10 (middle) point for the 2PL baseline. Returns Ks tx/sec.
///
/// The baseline's commit path is shorter than a shared-log round trip, so
/// a smaller window (2) equalizes the offered per-client load with the
/// Tango clients at 0% cross-partition — the figure compares how the two
/// protocols *degrade*, not their absolute single-partition ceilings.
pub fn fig10_middle_2pl(clients: usize, cross_pct: f64, seed: u64) -> f64 {
    let params = ClusterParams::paper_testbed();
    let mut sim: Sim<Msg> = Sim::new(LinkLatency::lan());
    let oracle_node = sim.add_node(NodeConfig::ten_gigabit(0));
    let oracle = sim.add_actor(oracle_node, Box::new(OracleActor::new(&params)));
    let shared = Rc::new(RefCell::new(TwoPlShared::default()));
    // Client actor ids are assigned in order after the oracle.
    let first_client = oracle + 1;
    let peers: Vec<simnet::ActorId> = (0..clients).map(|i| first_client + i).collect();
    let mut stats = Vec::new();
    for i in 0..clients {
        let st = ClientStats::shared();
        let node = sim.add_node(NodeConfig::gigabit((i % 2) as u8));
        let actor = TwoPlClientActor::new(
            &params,
            seed + i as u64,
            TxMix::paper(KeyDist::uniform(100_000)),
            cross_pct / 100.0,
            2,
            oracle,
            peers.clone(),
            i,
            Rc::clone(&shared),
            Rc::clone(&st),
        );
        let id = sim.add_actor(node, Box::new(actor));
        assert_eq!(id, peers[i], "actor id layout");
        stats.push(st);
    }
    let (delta, secs) = measure(&mut sim, &stats, 500 * MS, 2 * SEC);
    delta.committed as f64 / secs / 1_000.0
}

/// One Figure 10 (right) point: `clients` clients each hosting its own map
/// plus one shared map; `shared_pct` of transactions touch the shared map.
/// Returns Ks tx/sec.
pub fn fig10_right(clients: usize, shared_pct: f64, seed: u64) -> f64 {
    let params = ClusterParams::paper_testbed();
    let shared_oid = 1000u32;
    let mut cluster = build_cluster(&params, 1);
    let mut stats = Vec::new();
    for i in 0..clients {
        stats.push(add_tango_client(
            &mut cluster,
            &params,
            Behavior::OccTx {
                window: 8,
                mix: TxMix::paper(KeyDist::uniform(100_000)),
                target: TxTarget::SharedObject {
                    local: i as u32,
                    shared: shared_oid,
                    shared_prob: shared_pct / 100.0,
                },
                decision_records: true,
            },
            vec![i as u32, shared_oid],
            seed + i as u64,
            (i % 2) as u8,
        ));
    }
    let (delta, secs) = measure(&mut cluster.sim, &stats, 500 * MS, 2 * SEC);
    (delta.committed + delta.aborted) as f64 / secs / 1_000.0
}

/// §6.3 TangoBK: `writers` clients appending 4KB ledger entries as fast as
/// the log allows (no playback). Returns Ks of 4KB appends/sec.
pub fn sec63_bk(writers: usize, seed: u64) -> f64 {
    let mut params = ClusterParams::paper_testbed();
    // Ledger entries are not batched records: one append = one entry.
    params.batch = 1;
    let mut cluster = build_cluster(&params, 1);
    let mut stats = Vec::new();
    for i in 0..writers {
        stats.push(add_tango_client(
            &mut cluster,
            &params,
            // A very high target rate: effectively closed-loop on the log.
            Behavior::OpenLoopAppender { entries_per_sec: 40_000.0 },
            vec![i as u32],
            seed + i as u64,
            (i % 2) as u8,
        ));
    }
    let (delta, secs) = measure(&mut cluster.sim, &stats, 500 * MS, 2 * SEC);
    delta.writes as f64 / secs / 1_000.0
}
