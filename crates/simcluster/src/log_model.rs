//! The shared-log content model.
//!
//! The simulator's storage actors model *resources* (service times, NICs);
//! the log's *contents* — which streams each entry belongs to, which
//! transactions it carries, and their commit/abort outcomes — live here, in
//! one shared structure. Outcomes are computed in strict log order with the
//! real Tango versioning semantics (last committed conflicting write wins),
//! so the goodput the simulator reports reflects exactly the validation the
//! real runtime performs.

use std::collections::HashMap;

/// One commit record inside an entry.
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// The generating client (actor id), for completion routing.
    pub client: usize,
    /// Client-local transaction number.
    pub txn: u64,
    /// Read set: (oid, key, observed version).
    pub reads: Vec<(u32, u64, u64)>,
    /// Write set: (oid, key).
    pub writes: Vec<(u32, u64)>,
}

/// One log entry's modeled content.
#[derive(Debug, Clone, Default)]
pub struct EntryModel {
    /// Stream membership (which objects' clients must fetch this entry).
    pub streams: Vec<u32>,
    /// Commit records carried.
    pub txs: Vec<TxRecord>,
    /// Number of non-commit records carried (decision records etc.), for
    /// apply-cost accounting.
    pub other_records: usize,
    /// True if the commit records carry remote reads and the generator
    /// will publish a decision record: consumers that do not host the read
    /// set must stall until it arrives (§4.1 case C).
    pub needs_decision: bool,
    /// Offsets of earlier commit entries this entry's decision records
    /// resolve.
    pub decision_for: Vec<u64>,
    /// True once the chain write finished (readable).
    pub complete: bool,
}

/// The omniscient log: contents, committed-write version index, and
/// in-order OCC decisions.
#[derive(Debug, Default)]
pub struct OccLog {
    entries: Vec<Option<EntryModel>>,
    /// Outcomes per entry, parallel to `entries[i].txs`.
    outcomes: Vec<Vec<bool>>,
    /// Committed write positions per (oid, key), ascending.
    key_writes: HashMap<(u32, u64), Vec<u64>>,
    /// Entries below this offset are decided.
    decided_up_to: u64,
    /// Commit entries whose decision records are durable.
    decisions_published: std::collections::HashSet<u64>,
    committed: u64,
    aborted: u64,
}

impl OccLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the content of the entry at `offset` (called when the
    /// sequencer issues the token; the content is fixed by then).
    pub fn register(&mut self, offset: u64, entry: EntryModel) {
        // Tokens are issued in order but token *responses* can be processed
        // out of order across clients, so registration fills a sparse slot.
        let idx = offset as usize;
        if idx >= self.entries.len() {
            self.entries.resize_with(idx + 1, || None);
            self.outcomes.resize_with(idx + 1, Vec::new);
        }
        self.entries[idx] = Some(entry);
    }

    /// True once the entry's content is registered.
    pub fn is_registered(&self, offset: u64) -> bool {
        self.entries.get(offset as usize).map(|e| e.is_some()).unwrap_or(false)
    }

    /// Marks the entry's chain write complete (readable). Any decision
    /// records it carries become visible to stalled consumers.
    pub fn complete(&mut self, offset: u64) {
        let entry = self.entries[offset as usize].as_mut().expect("registered");
        entry.complete = true;
        let resolved = entry.decision_for.clone();
        for off in resolved {
            self.decisions_published.insert(off);
        }
    }

    /// True once the generating client's decision record for the commit
    /// entry at `offset` is durable in the log.
    pub fn decision_published(&self, offset: u64) -> bool {
        self.decisions_published.contains(&offset)
    }

    /// True if the entry at `offset` is readable.
    pub fn is_complete(&self, offset: u64) -> bool {
        self.entries
            .get(offset as usize)
            .and_then(|e| e.as_ref())
            .map(|e| e.complete)
            .unwrap_or(false)
    }

    /// The entry's model (must be registered).
    pub fn entry(&self, offset: u64) -> &EntryModel {
        self.entries[offset as usize].as_ref().expect("registered")
    }

    /// True if the entry at `offset` belongs to any of `hosted`.
    pub fn is_member(&self, offset: u64, hosted: &[u32]) -> bool {
        self.entry(offset).streams.iter().any(|s| hosted.contains(s))
    }

    /// The version a read of `(oid, key)` observes at playback position
    /// `pos` (exclusive): 1 + the last committed conflicting write below
    /// `pos`, or 0.
    pub fn version_for_read(&mut self, oid: u32, key: u64, pos: u64) -> u64 {
        self.decide_up_to(pos);
        match self.key_writes.get(&(oid, key)) {
            None => 0,
            Some(writes) => {
                let idx = writes.partition_point(|&w| w < pos);
                if idx == 0 {
                    0
                } else {
                    writes[idx - 1] + 1
                }
            }
        }
    }

    /// The commit/abort outcomes of the entry at `offset`, parallel to its
    /// `txs`.
    pub fn outcomes_at(&mut self, offset: u64) -> Vec<bool> {
        self.decide_up_to(offset + 1);
        self.outcomes[offset as usize].clone()
    }

    /// Total committed / aborted transactions decided so far.
    pub fn totals(&self) -> (u64, u64) {
        (self.committed, self.aborted)
    }

    fn decide_up_to(&mut self, pos: u64) {
        while self.decided_up_to < pos.min(self.entries.len() as u64) {
            let offset = self.decided_up_to;
            if self.entries[offset as usize].is_none() {
                break; // Token response still in flight; decided later.
            }
            let entry =
                std::mem::take(&mut self.entries[offset as usize].as_mut().expect("checked").txs);
            let mut outcomes = Vec::with_capacity(entry.len());
            for tx in &entry {
                let ok = tx.reads.iter().all(|&(oid, key, version)| {
                    let current = match self.key_writes.get(&(oid, key)) {
                        None => 0,
                        Some(writes) => {
                            let idx = writes.partition_point(|&w| w < offset);
                            if idx == 0 {
                                0
                            } else {
                                writes[idx - 1] + 1
                            }
                        }
                    };
                    current <= version
                });
                if ok {
                    self.committed += 1;
                    for &(oid, key) in &tx.writes {
                        self.key_writes.entry((oid, key)).or_default().push(offset);
                    }
                } else {
                    self.aborted += 1;
                }
                outcomes.push(ok);
            }
            self.entries[offset as usize].as_mut().expect("checked").txs = entry;
            self.outcomes[offset as usize] = outcomes;
            self.decided_up_to += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(reads: Vec<(u32, u64, u64)>, writes: Vec<(u32, u64)>) -> TxRecord {
        TxRecord { client: 0, txn: 0, reads, writes }
    }

    fn entry(txs: Vec<TxRecord>) -> EntryModel {
        EntryModel { streams: vec![0], txs, complete: true, ..Default::default() }
    }

    #[test]
    fn first_writer_wins() {
        let mut log = OccLog::new();
        // Both transactions read key 5 at version 0 and write it.
        log.register(0, entry(vec![tx(vec![(1, 5, 0)], vec![(1, 5)])]));
        log.register(1, entry(vec![tx(vec![(1, 5, 0)], vec![(1, 5)])]));
        assert_eq!(log.outcomes_at(0), vec![true]);
        assert_eq!(log.outcomes_at(1), vec![false]);
        assert_eq!(log.totals(), (1, 1));
    }

    #[test]
    fn disjoint_keys_commit() {
        let mut log = OccLog::new();
        log.register(0, entry(vec![tx(vec![(1, 5, 0)], vec![(1, 5)])]));
        log.register(1, entry(vec![tx(vec![(1, 6, 0)], vec![(1, 6)])]));
        assert_eq!(log.outcomes_at(1), vec![true]);
        assert_eq!(log.totals(), (2, 0));
    }

    #[test]
    fn versions_track_committed_writes_only() {
        let mut log = OccLog::new();
        // Entry 0 commits a write to (1,5); entry 1 aborts a write to (1,6);
        // entry 2 reads both at post-0 versions.
        log.register(0, entry(vec![tx(vec![], vec![(1, 5)])]));
        log.register(1, entry(vec![tx(vec![(1, 5, 0)], vec![(1, 6)])])); // stale: aborts
        assert_eq!(log.version_for_read(1, 5, 2), 1);
        assert_eq!(log.version_for_read(1, 6, 2), 0, "aborted write must not bump version");
        log.register(2, entry(vec![tx(vec![(1, 5, 1), (1, 6, 0)], vec![(1, 7)])]));
        assert_eq!(log.outcomes_at(2), vec![true]);
    }

    #[test]
    fn decision_publication_tracks_completion() {
        let mut log = OccLog::new();
        // A cross-partition commit at offset 0, its decision entry at 1.
        log.register(
            0,
            EntryModel {
                streams: vec![1, 2],
                txs: vec![tx(vec![(1, 5, 0)], vec![(1, 5), (2, 5)])],
                needs_decision: true,
                ..Default::default()
            },
        );
        log.register(
            1,
            EntryModel {
                streams: vec![1, 2],
                other_records: 1,
                decision_for: vec![0],
                ..Default::default()
            },
        );
        assert!(!log.decision_published(0));
        log.complete(0);
        assert!(!log.decision_published(0), "commit completion is not a decision");
        log.complete(1);
        assert!(log.decision_published(0));
    }

    #[test]
    fn batched_records_decide_in_entry_order() {
        let mut log = OccLog::new();
        // Two conflicting records in ONE entry: both read (1,5)@0, both
        // write it. In-order semantics: the first commits; the second sees
        // version... writes at the same offset -> version becomes offset+1
        // only for reads at later positions, so within the entry both
        // validate against pre-entry state: both commit (they occupy the
        // same log position, matching the paper's atomic batch semantics).
        log.register(
            0,
            entry(vec![tx(vec![(1, 5, 0)], vec![(1, 5)]), tx(vec![(1, 5, 0)], vec![(1, 5)])]),
        );
        assert_eq!(log.outcomes_at(0), vec![true, true]);
        // A later reader sees one version bump position.
        assert_eq!(log.version_for_read(1, 5, 1), 1);
    }
}
