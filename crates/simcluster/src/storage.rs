//! Infrastructure actors: the sequencer and the storage nodes.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use simnet::{Actor, ActorId, Ctx, Service, SimTime};

use crate::log_model::OccLog;
use crate::msg::Msg;
use crate::params::ClusterParams;

/// The sequencer: a networked counter with a single-server FIFO service
/// queue (§2.2, Figure 2).
pub struct SequencerActor {
    params: ClusterParams,
    svc: Service,
    tail: u64,
    pending: VecDeque<(ActorId, Msg)>,
    /// Effective service time (lowered when modeling batched requests).
    service_time: SimTime,
}

impl SequencerActor {
    /// Creates a sequencer; `batching` divides the per-request service time
    /// (Figure 2's "with a batch size of 4 … over 2M requests/sec").
    pub fn new(params: &ClusterParams, batching: u64) -> Self {
        Self {
            params: params.clone(),
            svc: Service::new(1),
            tail: 0,
            pending: VecDeque::new(),
            service_time: (params.seq_service / batching.max(1)).max(1),
        }
    }
}

impl Actor<Msg> for SequencerActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        let reply = match msg {
            Msg::SeqNext => {
                let offset = self.tail;
                self.tail += 1;
                Msg::SeqToken { offset, tail: self.tail }
            }
            Msg::SeqQuery => Msg::SeqTail { tail: self.tail },
            _ => return,
        };
        let done = self.svc.begin(ctx.now(), self.service_time);
        self.pending.push_back((from, reply));
        ctx.after(done - ctx.now(), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
        if let Some((to, reply)) = self.pending.pop_front() {
            ctx.send(to, reply, self.params.small_msg_bytes);
        }
    }
}

/// A storage node: separate FIFO service queues for reads and writes
/// (an SSD's read path is much faster than its write path).
pub struct StorageActor {
    params: ClusterParams,
    log: Rc<RefCell<OccLog>>,
    read_svc: Service,
    write_svc: Service,
    pending_reads: VecDeque<(ActorId, Msg, u64)>,
    pending_writes: VecDeque<(ActorId, Msg, u64)>,
}

const TAG_WRITE: u64 = 0;
const TAG_READ: u64 = 1;

impl StorageActor {
    /// Creates a storage node sharing the log content model.
    pub fn new(params: &ClusterParams, log: Rc<RefCell<OccLog>>) -> Self {
        Self {
            params: params.clone(),
            log,
            read_svc: Service::new(1),
            write_svc: Service::new(1),
            pending_reads: VecDeque::new(),
            pending_writes: VecDeque::new(),
        }
    }
}

impl Actor<Msg> for StorageActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Write { offset, chain_pos } => {
                let done = self.write_svc.begin(ctx.now(), self.params.storage_write_service);
                self.pending_writes.push_back((
                    from,
                    Msg::WriteAck { offset, chain_pos },
                    self.params.small_msg_bytes,
                ));
                ctx.after(done - ctx.now(), TAG_WRITE);
            }
            Msg::Read { offset } => {
                if !self.log.borrow().is_complete(offset) {
                    // A hole (in-flight chain write): tell the reader to
                    // retry, without consuming SSD service time.
                    ctx.send(
                        from,
                        Msg::ReadResp { offset, ready: false },
                        self.params.small_msg_bytes,
                    );
                    return;
                }
                let done = self.read_svc.begin(ctx.now(), self.params.storage_read_service);
                self.pending_reads.push_back((
                    from,
                    Msg::ReadResp { offset, ready: true },
                    self.params.read_resp_bytes,
                ));
                ctx.after(done - ctx.now(), TAG_READ);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        let queue =
            if tag == TAG_WRITE { &mut self.pending_writes } else { &mut self.pending_reads };
        if let Some((to, reply, bytes)) = queue.pop_front() {
            ctx.send(to, reply, bytes);
        }
    }
}
