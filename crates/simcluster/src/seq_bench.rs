//! The Figure 2 client: hammers the sequencer with a window of
//! outstanding token requests.

use std::cell::Cell;
use std::rc::Rc;

use simnet::{Actor, ActorId, Ctx};

use crate::msg::Msg;
use crate::params::ClusterParams;

/// A closed-loop sequencer client with `window` outstanding requests.
pub struct SeqBenchClient {
    sequencer: ActorId,
    window: usize,
    small: u64,
    completed: Rc<Cell<u64>>,
}

impl SeqBenchClient {
    /// Creates a client; completions are counted into `completed`.
    pub fn new(
        params: &ClusterParams,
        sequencer: ActorId,
        window: usize,
        completed: Rc<Cell<u64>>,
    ) -> Self {
        Self { sequencer, window, small: params.small_msg_bytes, completed }
    }
}

impl Actor<Msg> for SeqBenchClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        for _ in 0..self.window {
            ctx.send(self.sequencer, Msg::SeqNext, self.small);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
        if let Msg::SeqToken { .. } = msg {
            self.completed.set(self.completed.get() + 1);
            ctx.send(self.sequencer, Msg::SeqNext, self.small);
        }
    }
}
