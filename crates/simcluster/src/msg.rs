/// Messages exchanged by the model actors. Payload contents ride in the
/// shared [`crate::OccLog`]; messages carry offsets and ids, with on-wire
/// sizes supplied separately to the NIC model.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client -> sequencer: reserve the next offset.
    SeqNext,
    /// Sequencer -> client: the reserved offset plus the current tail.
    SeqToken {
        /// Reserved log offset.
        offset: u64,
        /// Tail after this token (next offset to be issued).
        tail: u64,
    },
    /// Client -> sequencer: read the tail (fast check / sync).
    SeqQuery,
    /// Sequencer -> client: the tail.
    SeqTail {
        /// Next offset to be issued.
        tail: u64,
    },
    /// Client -> storage: chain write of one entry.
    Write {
        /// Global log offset.
        offset: u64,
        /// Position in the chain (0 = head), for the client's bookkeeping.
        chain_pos: usize,
    },
    /// Storage -> client: write acknowledged.
    WriteAck {
        /// Global log offset.
        offset: u64,
        /// Echoed chain position.
        chain_pos: usize,
    },
    /// Client -> storage: read one entry.
    Read {
        /// Global log offset.
        offset: u64,
    },
    /// Storage -> client: entry contents (entry-sized on the wire).
    ReadResp {
        /// Global log offset.
        offset: u64,
        /// False if the entry's chain write has not completed yet (the
        /// client retries, as a real reader polls a hole).
        ready: bool,
    },
    /// 2PL client -> oracle: timestamp request.
    TsReq,
    /// Oracle -> client.
    TsResp {
        /// The timestamp.
        ts: u64,
    },
    /// 2PL coordinator -> partition owner: try-lock a set of keys held by
    /// this owner (versions validated in the shared lock model).
    TwoPlLock {
        /// Coordinator's transaction number.
        txn: u64,
    },
    /// Owner -> coordinator: lock outcome.
    TwoPlLockResp {
        /// Echoed transaction number.
        txn: u64,
        /// True if all requested locks were acquired.
        ok: bool,
    },
    /// Coordinator -> owner: commit + unlock (or abort + unlock).
    TwoPlFinish {
        /// Echoed transaction number.
        txn: u64,
    },
    /// Owner -> coordinator: finish acknowledged.
    TwoPlFinishAck {
        /// Echoed transaction number.
        txn: u64,
    },
}
