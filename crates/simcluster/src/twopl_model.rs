//! The 2PL baseline model for Figure 10 (middle): Percolator-style
//! timestamps from a centralized oracle, per-client partitions with
//! exclusive lock tables, and write-lock RPCs between clients for
//! cross-partition transactions.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use simnet::{Actor, ActorId, Ctx, Service, SimTime};
use workload::{SplitMix64, TxMix};

use crate::msg::Msg;
use crate::params::ClusterParams;
use crate::tango_client::ClientStats;

const TAG_CPU: u64 = 1 << 56;
const TAG_RETRY: u64 = 2 << 56;
const TAG_MASK: u64 = 0xFF << 56;

/// The timestamp oracle (runs on the sequencer machine in the paper).
pub struct OracleActor {
    svc: Service,
    service_time: SimTime,
    small: u64,
    next_ts: u64,
    pending: VecDeque<ActorId>,
}

impl OracleActor {
    /// Creates the oracle.
    pub fn new(params: &ClusterParams) -> Self {
        Self {
            svc: Service::new(1),
            service_time: params.seq_service,
            small: params.small_msg_bytes,
            next_ts: 1,
            pending: VecDeque::new(),
        }
    }
}

impl Actor<Msg> for OracleActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        if matches!(msg, Msg::TsReq) {
            let done = self.svc.begin(ctx.now(), self.service_time);
            self.pending.push_back(from);
            ctx.after(done - ctx.now(), 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
        if let Some(to) = self.pending.pop_front() {
            let ts = self.next_ts;
            self.next_ts += 1;
            ctx.send(to, Msg::TsResp { ts }, self.small);
        }
    }
}

/// Shared lock state across all partitions (contents live here; the
/// message flow carries only txn ids).
#[derive(Default)]
pub struct TwoPlShared {
    /// (partition, key) -> holding transaction.
    locks: HashMap<(usize, u64), u64>,
    /// Remote lock/finish requests in flight: txn -> (partition, keys).
    remote_reqs: HashMap<u64, (usize, Vec<u64>)>,
}

struct LiveTx {
    started: SimTime,
    local_keys: Vec<u64>,
    remote: Option<(usize, u64)>, // (peer index, key)
    local_locked: bool,
}

/// A 2PL client: hosts one partition, coordinates its own transactions,
/// and serves lock requests from peers (consuming its CPU).
pub struct TwoPlClientActor {
    params: ClusterParams,
    rng: SplitMix64,
    mix: TxMix,
    cross_prob: f64,
    window: usize,
    oracle: ActorId,
    /// Peer client actor ids, indexed by partition number.
    peers: Vec<ActorId>,
    my_partition: usize,
    shared: Rc<RefCell<TwoPlShared>>,
    stats: Rc<RefCell<ClientStats>>,
    cpu: Service,
    cpu_queue: VecDeque<CpuAction>,
    live: HashMap<u64, LiveTx>,
    next_txn: u64,
    /// Txns awaiting their timestamp (oracle replies arrive in order).
    ts_queue: VecDeque<u64>,
}

enum CpuAction {
    GenTx,
    /// A peer's lock request: try-lock and reply.
    ServeLock {
        from: ActorId,
        txn: u64,
    },
    /// A peer's finish request: unlock and ack.
    ServeFinish {
        from: ActorId,
        txn: u64,
    },
}

impl TwoPlClientActor {
    /// Creates a 2PL client for `my_partition`. `peers[my_partition]` must
    /// be this actor's own id.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        params: &ClusterParams,
        seed: u64,
        mix: TxMix,
        cross_prob: f64,
        window: usize,
        oracle: ActorId,
        peers: Vec<ActorId>,
        my_partition: usize,
        shared: Rc<RefCell<TwoPlShared>>,
        stats: Rc<RefCell<ClientStats>>,
    ) -> Self {
        Self {
            params: params.clone(),
            rng: SplitMix64::new(seed),
            mix,
            cross_prob,
            window,
            oracle,
            peers,
            my_partition,
            shared,
            stats,
            cpu: Service::new(1),
            cpu_queue: VecDeque::new(),
            live: HashMap::new(),
            next_txn: 1,
            ts_queue: VecDeque::new(),
        }
    }

    fn cpu_enqueue(&mut self, ctx: &mut Ctx<'_, Msg>, action: CpuAction, cost: SimTime) {
        let done = self.cpu.begin(ctx.now(), cost);
        self.cpu_queue.push_back(action);
        ctx.after(done - ctx.now(), TAG_CPU);
    }

    fn global_txn(&self, txn: u64) -> u64 {
        ((self.my_partition as u64) << 40) | txn
    }

    fn begin_tx(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // The baseline executes the same transaction body as the Tango
        // clients (the paper swapped only the EndTX implementation), so it
        // is charged the same generation + apply CPU.
        self.cpu_enqueue(ctx, CpuAction::GenTx, self.params.client_op_cpu + self.params.apply_cost);
    }

    fn generate_tx(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let spec = self.mix.sample(&mut self.rng);
        let txn = self.next_txn;
        self.next_txn += 1;
        let remote = if self.peers.len() > 1 && self.rng.gen_bool(self.cross_prob) {
            let mut peer = self.rng.gen_range(self.peers.len() as u64) as usize;
            if peer == self.my_partition {
                peer = (peer + 1) % self.peers.len();
            }
            Some((peer, spec.writes[0]))
        } else {
            None
        };
        self.live.insert(
            txn,
            LiveTx {
                started: ctx.now(),
                local_keys: spec.writes.clone(),
                remote,
                local_locked: false,
            },
        );
        // Phase 1: timestamp.
        ctx.send(self.oracle, Msg::TsReq, self.params.small_msg_bytes);
        // Track which txn this ts answers via FIFO ordering.
        self.ts_queue.push_back(txn);
    }

    fn proceed_after_ts(&mut self, ctx: &mut Ctx<'_, Msg>, txn: u64) {
        // Phase 2: local locks (reads were local; their validation and the
        // local write locks cost one CPU slice and touch the lock table).
        let gtxn = self.global_txn(txn);
        let (local_ok, remote) = {
            let tx = self.live.get(&txn).expect("live");
            let mut shared = self.shared.borrow_mut();
            let mut ok = true;
            for &k in &tx.local_keys {
                match shared.locks.get(&(self.my_partition, k)) {
                    Some(&holder) if holder != gtxn => {
                        ok = false;
                        break;
                    }
                    _ => {}
                }
            }
            if ok {
                for &k in &tx.local_keys {
                    shared.locks.insert((self.my_partition, k), gtxn);
                }
            }
            (ok, tx.remote)
        };
        if !local_ok {
            self.abort_and_retry(ctx, txn);
            return;
        }
        self.live.get_mut(&txn).expect("live").local_locked = true;
        match remote {
            None => self.finish_commit(ctx, txn),
            Some((peer, key)) => {
                self.shared.borrow_mut().remote_reqs.insert(gtxn, (peer, vec![key]));
                let peer_actor = self.peers[peer];
                ctx.send(peer_actor, Msg::TwoPlLock { txn: gtxn }, self.params.small_msg_bytes);
            }
        }
    }

    fn finish_commit(&mut self, ctx: &mut Ctx<'_, Msg>, txn: u64) {
        let gtxn = self.global_txn(txn);
        let tx = self.live.remove(&txn).expect("live");
        {
            let mut shared = self.shared.borrow_mut();
            for &k in &tx.local_keys {
                shared.locks.remove(&(self.my_partition, k));
            }
        }
        if let Some((peer, _)) = tx.remote {
            // Commit message releases the remote lock at the owner.
            ctx.send(self.peers[peer], Msg::TwoPlFinish { txn: gtxn }, self.params.small_msg_bytes);
        }
        let mut stats = self.stats.borrow_mut();
        stats.tx_committed += 1;
        stats.tx_latency.record(ctx.now() - tx.started);
        drop(stats);
        self.begin_tx(ctx);
    }

    fn abort_and_retry(&mut self, ctx: &mut Ctx<'_, Msg>, txn: u64) {
        let gtxn = self.global_txn(txn);
        let tx = self.live.remove(&txn).expect("live");
        let mut shared = self.shared.borrow_mut();
        if tx.local_locked {
            for &k in &tx.local_keys {
                if shared.locks.get(&(self.my_partition, k)) == Some(&gtxn) {
                    shared.locks.remove(&(self.my_partition, k));
                }
            }
        }
        drop(shared);
        self.stats.borrow_mut().tx_aborted += 1;
        // Retry (as a fresh transaction) after a short backoff.
        ctx.after(100 * simnet::US, TAG_RETRY);
    }

    fn serve_lock(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, txn: u64) {
        let ok = {
            let mut shared = self.shared.borrow_mut();
            let Some((partition, keys)) = shared.remote_reqs.get(&txn).cloned() else {
                ctx.send(from, Msg::TwoPlLockResp { txn, ok: false }, self.params.small_msg_bytes);
                return;
            };
            debug_assert_eq!(partition, self.my_partition);
            let ok = keys.iter().all(|&k| {
                shared.locks.get(&(self.my_partition, k)).map(|&h| h == txn).unwrap_or(true)
            });
            if ok {
                for &k in &keys {
                    shared.locks.insert((self.my_partition, k), txn);
                }
            }
            ok
        };
        ctx.send(from, Msg::TwoPlLockResp { txn, ok }, self.params.small_msg_bytes);
    }

    fn serve_finish(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, txn: u64) {
        {
            let mut shared = self.shared.borrow_mut();
            if let Some((_, keys)) = shared.remote_reqs.remove(&txn) {
                for k in keys {
                    if shared.locks.get(&(self.my_partition, k)) == Some(&txn) {
                        shared.locks.remove(&(self.my_partition, k));
                    }
                }
            }
        }
        ctx.send(from, Msg::TwoPlFinishAck { txn }, self.params.small_msg_bytes);
    }
}

// A FIFO of txns awaiting their timestamp (oracle responses come back in
// request order).
impl TwoPlClientActor {
    fn ts_front(&mut self) -> Option<u64> {
        self.ts_queue.pop_front()
    }
}

impl Actor<Msg> for TwoPlClientActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        for _ in 0..self.window {
            self.begin_tx(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::TsResp { .. } => {
                if let Some(txn) = self.ts_front() {
                    if self.live.contains_key(&txn) {
                        self.proceed_after_ts(ctx, txn);
                    }
                }
            }
            Msg::TwoPlLock { txn } => {
                self.cpu_enqueue(
                    ctx,
                    CpuAction::ServeLock { from, txn },
                    self.params.client_op_cpu,
                );
            }
            Msg::TwoPlFinish { txn } => {
                self.cpu_enqueue(
                    ctx,
                    CpuAction::ServeFinish { from, txn },
                    self.params.client_op_cpu,
                );
            }
            Msg::TwoPlLockResp { txn, ok } => {
                let local = txn & 0xFF_FFFF_FFFF;
                if !self.live.contains_key(&local) {
                    return;
                }
                if ok {
                    self.finish_commit(ctx, local);
                } else {
                    // Release the remote request record and retry.
                    self.shared.borrow_mut().remote_reqs.remove(&txn);
                    self.abort_and_retry(ctx, local);
                }
            }
            Msg::TwoPlFinishAck { .. } => {}
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        match tag & TAG_MASK {
            TAG_CPU => match self.cpu_queue.pop_front() {
                Some(CpuAction::GenTx) => self.generate_tx(ctx),
                Some(CpuAction::ServeLock { from, txn }) => self.serve_lock(ctx, from, txn),
                Some(CpuAction::ServeFinish { from, txn }) => self.serve_finish(ctx, from, txn),
                None => {}
            },
            TAG_RETRY => self.begin_tx(ctx),
            _ => {}
        }
    }
}
