#![warn(missing_docs)]
//! Performance models of the CORFU/Tango/2PL protocols over [`simnet`],
//! used to regenerate every figure of the paper's evaluation (§6).
//!
//! We lack the paper's testbed (36 8-core machines in two racks, 18 storage
//! nodes with Intel X25-V SSDs in a 9x2 CORFU deployment, a 32-core
//! sequencer, gigabit client NICs). The models here run the *protocols'
//! actual message flows* — sequencer tokens, client-driven chain writes,
//! stream playback, OCC validation with the real
//! [`tango::ConflictTable`] semantics over real zipf/uniform key draws,
//! decision records for cross-partition transactions, and the Percolator-
//! style 2PL baseline — against calibrated resource models (NIC bandwidth,
//! SSD service times, sequencer service time, client CPU costs).
//!
//! Calibration constants live in [`ClusterParams`] and derive from the
//! paper's own component numbers, not from per-figure tuning; see
//! EXPERIMENTS.md for the derivation and the paper-vs-measured comparison.
//!
//! Entry points are in [`experiments`]: one function per figure.

pub mod experiments;
mod log_model;
mod msg;
mod params;
mod seq_bench;
mod storage;
mod tango_client;
mod twopl_model;

pub use log_model::{OccLog, TxRecord};
pub use msg::Msg;
pub use params::ClusterParams;
