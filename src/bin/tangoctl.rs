//! `tangoctl` — inspect a live Tango/CORFU deployment through its
//! per-node HTTP scrape endpoints.
//!
//! ```text
//! tangoctl status   [name=]host:port ...   shard table + per-node summary
//! tangoctl health   [name=]host:port ...   verdict; exit 0=ok 1=degraded 2=unhealthy
//! tangoctl timeline [name=]host:port ...   merged causal control-plane timeline
//! tangoctl storage  [name=]host:port ...   occupancy, trim horizon, tier split, scrub
//! ```
//!
//! Targets are scrape addresses (`HttpScrapeServer`), one per node; a
//! `name=` prefix sets the node name used in output (defaults to the
//! address). Unreachable targets are reported, never fatal — an
//! inspector that wedges on the dead node you are debugging is useless.

use std::process::ExitCode;
use std::time::Duration;

use tango_metrics::{HealthPolicy, HealthStatus};
use tango_repro::inspector;

const USAGE: &str = "usage: tangoctl <status|health|timeline|storage> [name=]host:port ...";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, target_args)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(64);
    };
    let targets = inspector::parse_targets(target_args);
    if targets.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(64);
    }
    let (cluster, unreachable) = inspector::scrape(&targets, Duration::from_secs(2));
    match command.as_str() {
        "status" => {
            print!("{}", inspector::render_status(&cluster, &unreachable));
            ExitCode::SUCCESS
        }
        "health" => {
            let (text, status) =
                inspector::render_health(&cluster, &unreachable, &HealthPolicy::default());
            print!("{text}");
            match status {
                HealthStatus::Ok => ExitCode::SUCCESS,
                HealthStatus::Degraded => ExitCode::from(1),
                HealthStatus::Unhealthy => ExitCode::from(2),
            }
        }
        "timeline" => {
            print!("{}", inspector::render_timeline(&cluster));
            ExitCode::SUCCESS
        }
        "storage" => {
            print!("{}", inspector::render_storage(&cluster, &unreachable));
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("tangoctl: unknown command `{other}`\n{USAGE}");
            ExitCode::from(64)
        }
    }
}
