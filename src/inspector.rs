//! The `tangoctl` inspector: scrape live nodes, render cluster status,
//! health, and the merged control-plane timeline.
//!
//! Everything here is pure rendering over [`ClusterSnapshot`] /
//! [`ClusterHealth`] so tests can drive it without sockets; the binary in
//! `src/bin/tangoctl.rs` is a thin argv-and-scrape shell around it. The
//! timeline rendering delegates to [`ClusterSnapshot::timeline_text`],
//! whose causal ordering (epoch, node, node sequence — no clocks) makes
//! `tangoctl timeline` byte-identical across replays of a seeded chaos
//! schedule.

use std::collections::BTreeSet;
use std::time::Duration;

use tango_metrics::health::{
    GAUGE_APPLIED, GAUGE_EPOCH, GAUGE_OCCUPANCY, GAUGE_SEQ_TAIL, GAUGE_TRIM_HORIZON,
};
use tango_metrics::{log_scoped, ClusterHealth, ClusterSnapshot, HealthPolicy, HealthStatus};
use tango_rpc::fetch_snapshot;

/// One node to scrape: a display name plus its HTTP scrape address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapeTarget {
    /// Display name used in renderings (`name=` prefix, or the address).
    pub name: String,
    /// `host:port` of the node's scrape endpoint.
    pub addr: String,
}

/// Parses `name=host:port` (or bare `host:port`, which names the node
/// after its address) target arguments.
pub fn parse_targets(args: &[String]) -> Vec<ScrapeTarget> {
    args.iter()
        .map(|arg| match arg.split_once('=') {
            Some((name, addr)) => ScrapeTarget { name: name.to_string(), addr: addr.to_string() },
            None => ScrapeTarget { name: arg.clone(), addr: arg.clone() },
        })
        .collect()
}

/// Scrapes every target's `/snapshot.bin`. Nodes that do not answer
/// within `timeout` land in the returned unreachable list instead of
/// wedging the scrape.
pub fn scrape(targets: &[ScrapeTarget], timeout: Duration) -> (ClusterSnapshot, Vec<String>) {
    let mut cluster = ClusterSnapshot::new();
    let mut unreachable = Vec::new();
    for t in targets {
        match fetch_snapshot(&t.addr, timeout) {
            Ok(snap) => cluster.insert(t.name.clone(), snap),
            Err(_) => unreachable.push(t.name.clone()),
        }
    }
    (cluster, unreachable)
}

/// `name` is `base` scoped to some log (see [`log_scoped`]): returns the
/// log, with the bare `base` meaning log 0.
fn scoped_log(name: &str, base: &str) -> Option<u64> {
    if name == base {
        return Some(0);
    }
    name.strip_prefix(base)?.strip_prefix(".log")?.parse().ok()
}

/// `tangoctl status`: a per-log shard table (epoch, sequencer tail,
/// applied watermark, lag — each the max across nodes publishing that
/// gauge) followed by a per-node summary.
pub fn render_status(cluster: &ClusterSnapshot, unreachable: &[String]) -> String {
    let mut out = format!(
        "cluster: {} node(s) scraped, {} unreachable\n\n",
        cluster.len(),
        unreachable.len()
    );

    // Every log any node publishes a scoped gauge for.
    let merged = cluster.merged();
    let mut logs: BTreeSet<u64> = BTreeSet::new();
    for (name, _) in &merged.gauges {
        for base in [GAUGE_SEQ_TAIL, GAUGE_APPLIED, GAUGE_EPOCH] {
            if let Some(log) = scoped_log(name, base) {
                logs.insert(log);
            }
        }
    }

    out.push_str("LOG  EPOCH  SEQ-TAIL  APPLIED  LAG\n");
    for log in &logs {
        let max_gauge = |base: &str| -> i64 {
            let scoped = log_scoped(base, *log);
            cluster.nodes().map(|(_, s)| s.gauge(&scoped)).max().unwrap_or(0)
        };
        let epoch = max_gauge(GAUGE_EPOCH);
        let tail = max_gauge(GAUGE_SEQ_TAIL);
        let applied = max_gauge(GAUGE_APPLIED);
        out.push_str(&format!(
            "{:<4} {:<6} {:<9} {:<8} {}\n",
            log,
            epoch,
            tail,
            applied,
            (tail - applied).max(0)
        ));
    }

    out.push_str("\nNODE                 CONNS  DROPS  EVENTS\n");
    for (name, snap) in cluster.nodes() {
        out.push_str(&format!(
            "{:<20} {:<6} {:<6} {}\n",
            name,
            snap.gauge("rpc.server_conns"),
            snap.counter("rpc.accepts_dropped"),
            snap.events.len()
        ));
    }
    for name in unreachable {
        out.push_str(&format!("{name:<20} unreachable\n"));
    }
    out
}

/// `tangoctl health`: the cluster verdict, each tripped reason, and a
/// per-node status line. Returns the rendering plus the verdict (the
/// binary maps it to an exit code: ok=0, degraded=1, unhealthy=2).
pub fn render_health(
    cluster: &ClusterSnapshot,
    unreachable: &[String],
    policy: &HealthPolicy,
) -> (String, HealthStatus) {
    let health = ClusterHealth::evaluate(cluster, unreachable, policy);
    let mut out = format!("cluster: {}\n", health.status.name());
    for reason in &health.reasons {
        out.push_str(&format!("  [{}] {}: {}\n", reason.status.name(), reason.code, reason.detail));
    }
    for (name, report) in &health.nodes {
        out.push_str(&format!("node {name}: {}\n", report.status.name()));
        for reason in &report.reasons {
            out.push_str(&format!(
                "  [{}] {}: {}\n",
                reason.status.name(),
                reason.code,
                reason.detail
            ));
        }
    }
    (out, health.status)
}

/// `tangoctl timeline`: the merged causally-ordered control-plane
/// timeline. Replay-stable by construction (no timestamps).
pub fn render_timeline(cluster: &ClusterSnapshot) -> String {
    cluster.timeline_text()
}

/// `tangoctl storage`: the reclamation loop per storage node — occupancy,
/// trim horizon, hot/cold tier split, pages reclaimed/migrated, and scrub
/// progress. Nodes that publish no `corfu.storage.occupancy` gauge
/// (sequencers, layout replicas, clients) are left out.
pub fn render_storage(cluster: &ClusterSnapshot, unreachable: &[String]) -> String {
    let mut out =
        String::from("NODE                 LOG  OCCUPANCY  HORIZON  HOT    COLD   RECLAIMED  MIGRATED  SCRUBBED  SCRUB-ERRS\n");
    let mut rows = 0usize;
    for (name, snap) in cluster.nodes() {
        // One row per log the node publishes storage gauges for (a node
        // serves one log, but the scrape does not assume that).
        let mut logs: BTreeSet<u64> = BTreeSet::new();
        for (gauge_name, _) in &snap.gauges {
            if let Some(log) = scoped_log(gauge_name, GAUGE_OCCUPANCY) {
                logs.insert(log);
            }
        }
        for log in logs {
            let g = |base: &str| snap.gauge(&log_scoped(base, log));
            let c = |base: &str| snap.counter(&log_scoped(base, log));
            out.push_str(&format!(
                "{:<20} {:<4} {:<10} {:<8} {:<6} {:<6} {:<10} {:<9} {:<9} {}\n",
                name,
                log,
                g(GAUGE_OCCUPANCY),
                g(GAUGE_TRIM_HORIZON),
                g("corfu.storage.hot_pages"),
                g("corfu.storage.cold_pages"),
                c("corfu.storage.reclaimed_pages"),
                c("corfu.storage.migrated_pages"),
                c("corfu.storage.scrubbed_pages"),
                c("corfu.storage.scrub_errors"),
            ));
            rows += 1;
        }
    }
    if rows == 0 {
        out.push_str("(no storage nodes in scrape)\n");
    }
    for name in unreachable {
        out.push_str(&format!("{name:<20} unreachable\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_metrics::{EventKind, Registry};

    #[test]
    fn parse_targets_accepts_named_and_bare() {
        let targets =
            parse_targets(&["seq=127.0.0.1:9001".to_string(), "127.0.0.1:9002".to_string()]);
        assert_eq!(targets[0].name, "seq");
        assert_eq!(targets[0].addr, "127.0.0.1:9001");
        assert_eq!(targets[1].name, "127.0.0.1:9002");
        assert_eq!(targets[1].addr, "127.0.0.1:9002");
    }

    #[test]
    fn status_renders_per_log_and_per_node_tables() {
        let seq = {
            let r = Registry::new();
            r.gauge(&log_scoped(GAUGE_SEQ_TAIL, 1)).set(500);
            r.gauge(&log_scoped(GAUGE_EPOCH, 1)).set(2);
            r.snapshot()
        };
        let client = {
            let r = Registry::new();
            r.gauge(&log_scoped(GAUGE_APPLIED, 1)).set(480);
            r.events().emit(EventKind::Sealed, 2, 1, 500);
            r.snapshot()
        };
        let mut cs = ClusterSnapshot::new();
        cs.insert("sequencer-1", seq);
        cs.insert("clients", client);
        let text = render_status(&cs, &["storage-9".to_string()]);
        assert!(text.contains("2 node(s) scraped, 1 unreachable"), "{text}");
        assert!(text.contains("1    2      500       480      20"), "{text}");
        assert!(text.contains("storage-9"), "{text}");
        assert!(text.contains("clients"), "{text}");
    }

    #[test]
    fn health_maps_verdicts_and_lists_reasons() {
        let cs = ClusterSnapshot::new();
        let (text, status) = render_health(&cs, &[], &HealthPolicy::default());
        assert_eq!(status, HealthStatus::Ok);
        assert!(text.starts_with("cluster: ok"), "{text}");

        let (text, status) =
            render_health(&cs, &["storage-1".to_string()], &HealthPolicy::default());
        assert_eq!(status, HealthStatus::Degraded);
        assert!(text.contains("[degraded] unreachable"), "{text}");
    }

    #[test]
    fn storage_renders_reclamation_columns() {
        let storage = {
            let r = Registry::new();
            r.gauge(&log_scoped(GAUGE_OCCUPANCY, 1)).set(96);
            r.gauge(&log_scoped(GAUGE_TRIM_HORIZON, 1)).set(800);
            r.gauge(&log_scoped("corfu.storage.hot_pages", 1)).set(16);
            r.gauge(&log_scoped("corfu.storage.cold_pages", 1)).set(80);
            r.counter(&log_scoped("corfu.storage.reclaimed_pages", 1)).add(700);
            r.counter(&log_scoped("corfu.storage.migrated_pages", 1)).add(750);
            r.counter(&log_scoped("corfu.storage.scrubbed_pages", 1)).add(123);
            r.snapshot()
        };
        let seq = Registry::new().snapshot();
        let mut cs = ClusterSnapshot::new();
        cs.insert("storage-3", storage);
        cs.insert("sequencer", seq);
        let text = render_storage(&cs, &["storage-9".to_string()]);
        assert!(text.contains("storage-3"), "{text}");
        assert!(text.contains("96"), "{text}");
        assert!(text.contains("800"), "{text}");
        assert!(text.contains("123"), "{text}");
        // The sequencer publishes no occupancy gauge: no row.
        assert!(!text.contains("sequencer"), "{text}");
        assert!(text.contains("storage-9            unreachable"), "{text}");
    }

    #[test]
    fn timeline_is_causal_text() {
        let r = Registry::new();
        r.events().emit(EventKind::Sealed, 3, 0, 42);
        let mut cs = ClusterSnapshot::new();
        cs.insert("seq", r.snapshot());
        assert_eq!(render_timeline(&cs), "epoch=3 node=seq seq=1 kind=sealed log=0 detail=42\n");
    }
}
