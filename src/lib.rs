//! Shared helpers for the workspace integration tests and examples.

pub mod inspector;
