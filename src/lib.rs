//! Shared helpers for the workspace integration tests and examples.
