//! Quickstart: a replicated register and map over a shared log, in the
//! style of the paper's Figure 3.
//!
//! Run with: `cargo run --example quickstart`

use corfu::cluster::{ClusterConfig, LocalCluster};
use tango::TangoRuntime;
use tango_objects::{TangoMap, TangoRegister};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Bring up a CORFU shared log: 3 replica sets x 2 replicas, 4KB
    //    entries, in-process (swap in `TcpCluster` for real sockets).
    let cluster = LocalCluster::new(ClusterConfig::default());

    // 2. Each application server runs a Tango runtime over a log client.
    let runtime_a = TangoRuntime::new(cluster.client()?)?;
    let runtime_b = TangoRuntime::new(cluster.client()?)?;

    // 3. A TangoRegister: linearizable, persistent, highly available.
    let reg_a: TangoRegister<String> = TangoRegister::open(&runtime_a, "greeting")?;
    let reg_b: TangoRegister<String> = TangoRegister::open(&runtime_b, "greeting")?;

    reg_a.write(&"hello from client A".to_owned())?;
    println!("client B reads: {:?}", reg_b.read()?);

    // 4. A TangoMap with fine-grained conflict detection, shared by both.
    let map_a: TangoMap<String, u64> = TangoMap::open(&runtime_a, "inventory")?;
    let map_b: TangoMap<String, u64> = TangoMap::open(&runtime_b, "inventory")?;
    map_a.put(&"widgets".to_owned(), &100)?;
    map_b.put(&"gears".to_owned(), &7)?;
    println!("client A sees {} items", map_a.len()?);

    // 5. A transaction across both objects: atomic and isolated, with no
    //    distributed commit protocol — just the shared log.
    runtime_a.begin_tx()?;
    let widgets = map_a.get(&"widgets".to_owned())?.unwrap_or(0);
    map_a.put(&"widgets".to_owned(), &(widgets - 1))?;
    reg_a.write(&format!("sold one widget, {} left", widgets - 1))?;
    let status = runtime_a.end_tx()?;
    println!("transaction: {status:?}");
    println!("client B reads: {:?}", reg_b.read()?);
    println!("client B sees widgets = {:?}", map_b.get(&"widgets".to_owned())?);

    // 6. Durability: a brand-new client reconstructs all state by playing
    //    the shared history.
    let runtime_c = TangoRuntime::new(cluster.client()?)?;
    let map_c: TangoMap<String, u64> = TangoMap::open(&runtime_c, "inventory")?;
    println!("fresh client C sees widgets = {:?}", map_c.get(&"widgets".to_owned())?);

    Ok(())
}
