//! Consistent remote mirroring (§3.2): "application state can be
//! asynchronously mirrored to remote data centers by having a process at
//! the remote site play the log and copy its contents. Since log order is
//! maintained, the mirror is guaranteed to represent a consistent,
//! system-wide snapshot of the primary at some point in the past."
//!
//! A mirror daemon replays the primary log's entries, in order, into a
//! second CORFU cluster; Tango views opened against the mirror reconstruct
//! a consistent snapshot — across *all* objects at once.
//!
//! Run with: `cargo run --example remote_mirror`

use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu::ReadOutcome;
use tango::{TangoRuntime, TxStatus};
use tango_objects::{TangoCounter, TangoMap};

/// Replays primary entries `[from, tail)` into the mirror, preserving
/// order and stream membership. Returns the offset to resume from.
fn mirror_once(primary: &corfu::CorfuClient, mirror: &corfu::CorfuClient, from: u64) -> u64 {
    let tail = primary.check_tail_fast().unwrap();
    for off in from..tail {
        match primary.wait_read(off).unwrap() {
            ReadOutcome::Data(bytes) => {
                let entry = corfu::EntryEnvelope::decode(&bytes, off).unwrap();
                let streams: Vec<u32> = entry.headers.iter().map(|h| h.stream).collect();
                mirror.append_streams(&streams, entry.payload).unwrap();
            }
            // Junk (patched holes) carries no state; mirror it as junk so
            // offsets stay aligned (not required for correctness, since
            // streams re-link via backpointers, but keeps the logs
            // comparable).
            ReadOutcome::Junk | ReadOutcome::Trimmed | ReadOutcome::Unwritten => {
                let token = mirror.token(&[]).unwrap();
                let _ = mirror.fill(token.offset);
            }
        }
    }
    tail
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let primary_cluster = LocalCluster::new(ClusterConfig::default());
    let mirror_cluster = LocalCluster::new(ClusterConfig::default());

    // The primary application: an inventory map and an order counter,
    // updated transactionally so their states are always consistent.
    let rt = TangoRuntime::new(primary_cluster.client()?)?;
    let inventory: TangoMap<String, u64> = TangoMap::open(&rt, "inventory")?;
    let orders = TangoCounter::open(&rt, "orders")?;
    inventory.put(&"widgets".to_owned(), &100)?;
    for _ in 0..7 {
        inventory.len()?; // refresh
        rt.begin_tx()?;
        let w = inventory.get(&"widgets".to_owned())?.unwrap();
        inventory.put(&"widgets".to_owned(), &(w - 1))?;
        orders.add(1)?;
        assert_eq!(rt.end_tx()?, TxStatus::Committed);
    }
    println!(
        "primary: widgets = {:?}, orders = {}",
        inventory.get(&"widgets".to_owned())?,
        orders.get()?
    );

    // The mirror daemon replays the log into the remote cluster.
    let primary_log = primary_cluster.client()?;
    let mirror_log = mirror_cluster.client()?;
    let copied = mirror_once(&primary_log, &mirror_log, 0);
    println!("mirror daemon copied {copied} log entries to the remote site");

    // Disaster strikes the primary; the remote site opens views against
    // its own log and sees a consistent system-wide snapshot.
    let remote_rt = TangoRuntime::new(mirror_cluster.client()?)?;
    let remote_inventory: TangoMap<String, u64> = TangoMap::open(&remote_rt, "inventory")?;
    let remote_orders = TangoCounter::open(&remote_rt, "orders")?;
    let widgets = remote_inventory.get(&"widgets".to_owned())?.unwrap();
    let order_count = remote_orders.get()? as u64;
    println!("mirror: widgets = {widgets}, orders = {order_count}");
    // The invariant (widgets sold == orders taken) holds at the mirror:
    // the shared log's total order is what makes the cross-object snapshot
    // consistent.
    assert_eq!(widgets + order_count, 100, "mirror snapshot must be consistent");
    println!("cross-object invariant holds at the remote site");
    Ok(())
}
