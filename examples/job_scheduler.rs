//! The paper's §4 motivating example: a job scheduling service built from
//! three Tango objects — a map of job assignments, a set of free compute
//! nodes, and a counter for job ids — replicated on multiple application
//! servers for high availability (Figure 5a), plus a backup service that
//! shares the free list with the scheduler (Figure 5c).
//!
//! Run with: `cargo run --example job_scheduler`

use std::sync::Arc;

use corfu::cluster::{ClusterConfig, LocalCluster};
use tango::{TangoRuntime, TxStatus};
use tango_objects::{TangoCounter, TangoMap, TangoTreeSet};

struct Scheduler {
    runtime: Arc<TangoRuntime>,
    assignments: TangoMap<u64, String>, // job id -> compute node
    free_nodes: TangoTreeSet<String>,
    job_ids: TangoCounter,
}

impl Scheduler {
    fn connect(cluster: &LocalCluster) -> Result<Self, Box<dyn std::error::Error>> {
        let runtime = TangoRuntime::new(cluster.client()?)?;
        Ok(Self {
            assignments: TangoMap::open(&runtime, "job-assignments")?,
            free_nodes: TangoTreeSet::open(&runtime, "free-nodes")?,
            job_ids: TangoCounter::open(&runtime, "job-ids")?,
            runtime,
        })
    }

    /// Atomically: allocate a job id, take a node off the free list, and
    /// record the assignment. Retries on conflicts with other schedulers.
    fn schedule(&self) -> Result<Option<(u64, String)>, Box<dyn std::error::Error>> {
        loop {
            // Refresh views, then transact on the snapshot.
            let candidate = self.free_nodes.first()?;
            let Some(node) = candidate else { return Ok(None) };
            self.runtime.begin_tx()?;
            let job = self.job_ids.get()?; // reads record versions in-tx
            self.job_ids.set(job + 1)?;
            self.free_nodes.remove(&node)?;
            self.assignments.put(&job.try_into()?, &node)?;
            match self.runtime.end_tx()? {
                TxStatus::Committed => return Ok(Some((job as u64, node))),
                TxStatus::Aborted => continue, // another scheduler won; retry
            }
        }
    }

    /// Returns a node to the free list when its job finishes.
    fn complete(&self, job: u64) -> Result<(), Box<dyn std::error::Error>> {
        loop {
            let Some(node) = self.assignments.get(&job)? else { return Ok(()) };
            self.runtime.begin_tx()?;
            self.assignments.remove(&job)?;
            self.free_nodes.insert(&node)?;
            if self.runtime.end_tx()? == TxStatus::Committed {
                return Ok(());
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = LocalCluster::new(ClusterConfig::default());

    // Two fully replicated scheduler instances (high availability).
    let sched1 = Scheduler::connect(&cluster)?;
    let sched2 = Scheduler::connect(&cluster)?;

    for i in 0..4 {
        sched1.free_nodes.insert(&format!("node-{i}"))?;
    }

    // Both schedulers hand out jobs concurrently; transactions keep the
    // free list and the assignment table consistent.
    let (j1, n1) = sched1.schedule()?.expect("free node available");
    let (j2, n2) = sched2.schedule()?.expect("free node available");
    println!("scheduler 1 assigned job {j1} to {n1}");
    println!("scheduler 2 assigned job {j2} to {n2}");
    assert_ne!(n1, n2, "two jobs must not share a node");

    // The backup service (a different application) shares the free list:
    // it takes a node offline, backs it up, and returns it.
    let backup_rt = TangoRuntime::new(cluster.client()?)?;
    let backup_free: TangoTreeSet<String> = TangoTreeSet::open(&backup_rt, "free-nodes")?;
    let target = backup_free.first()?.expect("a free node to back up");
    backup_free.remove(&target)?;
    println!("backup service took {target} offline");
    backup_free.insert(&target)?;
    println!("backup service returned {target}");

    // Scheduler 1 completes a job; its node becomes schedulable again.
    sched1.complete(j1)?;
    println!(
        "after completion, free nodes = {:?}, assignments = {}",
        sched1.free_nodes.range::<std::ops::RangeFull>(..)?,
        sched1.assignments.len()?
    );

    // A failover scheduler reconstructs everything from the log.
    let sched3 = Scheduler::connect(&cluster)?;
    let (j3, n3) = sched3.schedule()?.expect("node available after failover");
    println!("failover scheduler assigned job {j3} to {n3}");
    Ok(())
}
