//! TangoZK with layered partitioning (§4, §6.3): a filesystem namespace
//! sharded across two TangoZK instances, with transactional moves between
//! the shards — the operation the paper highlights as impossible in
//! ZooKeeper itself.
//!
//! Run with: `cargo run --example namespace_move`

use corfu::cluster::{ClusterConfig, LocalCluster};
use tango::TangoRuntime;
use tango_objects::zk::{move_node, CreateMode, TangoZK};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let runtime = TangoRuntime::new(cluster.client()?)?;

    // Two namespace partitions (e.g. /hot and /cold storage tiers).
    let hot = TangoZK::open(&runtime, "ns-hot")?;
    let cold = TangoZK::open(&runtime, "ns-cold")?;

    hot.create("/data", b"", CreateMode::Persistent)?;
    cold.create("/archive", b"", CreateMode::Persistent)?;

    for i in 0..3 {
        let path = hot.create(
            "/data/report-",
            format!("contents of report {i}").as_bytes(),
            CreateMode::PersistentSequential,
        )?;
        println!("created {path} in the hot tier");
    }

    // Watch the cold tier from a second client.
    let watcher_rt = TangoRuntime::new(cluster.client()?)?;
    let cold_watcher = TangoZK::open(&watcher_rt, "ns-cold")?;
    let events = cold_watcher.watch_children("/archive")?;

    // Atomically archive a report: delete from hot, create in cold — one
    // transaction spanning two objects on the shared log.
    move_node(&hot, &cold, "/data/report-0000000000", "/archive/report-0000000000")?;
    println!("moved report-0000000000 to the cold tier");

    println!("hot tier now: {:?}", hot.get_children("/data")?);
    println!("cold tier now: {:?}", cold_watcher.get_children("/archive")?);
    println!("watcher saw: {:?}", events.try_iter().collect::<Vec<_>>());

    // Versioned updates and multi-ops still work per namespace.
    let (data, stat) = cold.get_data("/archive/report-0000000000")?;
    println!("archived data: {:?} (version {})", std::str::from_utf8(&data)?, stat.version);
    cold.set_data("/archive/report-0000000000", b"compressed", Some(stat.version))?;

    // ZooKeeper-style conditional delete with a stale version fails safely.
    let err = cold.delete("/archive/report-0000000000", Some(0)).unwrap_err();
    println!("stale-version delete correctly rejected: {err}");
    Ok(())
}
