//! History as a first-class property (§3.1, §3.2): point-in-time
//! snapshots, coordinated rollback across objects, checkpoints, and
//! garbage collection — all via simple operations on the shared log.
//!
//! Run with: `cargo run --example time_travel`

use corfu::cluster::{ClusterConfig, LocalCluster};
use tango::{RuntimeOptions, TangoRuntime};
use tango_objects::{TangoMap, TangoRegister};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let runtime = TangoRuntime::new(cluster.client()?)?;

    let config: TangoRegister<String> = TangoRegister::open(&runtime, "config")?;
    let users: TangoMap<String, u64> = TangoMap::open(&runtime, "users")?;

    // Epoch 1 of the application's life.
    config.write(&"v1".to_owned())?;
    users.put(&"alice".to_owned(), &1)?;
    users.put(&"bob".to_owned(), &2)?;
    config.read()?; // sync
    let snapshot_pos = runtime.position();
    println!("took a consistent snapshot at log position {snapshot_pos}");

    // Epoch 2: a cascading corruption event (oops).
    config.write(&"v2-broken".to_owned())?;
    users.put(&"alice".to_owned(), &999)?;
    users.remove(&"bob".to_owned())?;
    println!("current state: config={:?}, users={}", config.read()?, users.len()?);

    // Coordinated rollback: instantiate views of BOTH objects synced to
    // the same prefix of the shared log (§3.2) — a consistent system-wide
    // snapshot, like the paper's remote mirroring guarantee.
    let past_runtime = TangoRuntime::with_options(
        cluster.client()?,
        RuntimeOptions { play_limit: Some(snapshot_pos), ..RuntimeOptions::default() },
    )?;
    let past_config: TangoRegister<String> = TangoRegister::open(&past_runtime, "config")?;
    let past_users: TangoMap<String, u64> = TangoMap::open(&past_runtime, "users")?;
    println!(
        "time-travel view: config={:?}, alice={:?}, bob={:?}",
        past_config.read()?,
        past_users.get(&"alice".to_owned())?,
        past_users.get(&"bob".to_owned())?,
    );

    // Repair the live state from the snapshot.
    for (k, v) in past_users.snapshot()? {
        users.put(&k, &v)?;
    }
    config.write(&past_config.read()?.unwrap())?;
    println!("restored: config={:?}, users={}", config.read()?, users.len()?);

    // Checkpoints + forget: reclaim the log prefix (§3.1 "forget").
    let users_ckpt = runtime.checkpoint(users.oid())?;
    let config_ckpt = runtime.checkpoint(config.oid())?;
    runtime.forget(users.oid(), users_ckpt)?;
    runtime.forget(config.oid(), config_ckpt)?;
    let dir_ckpt = runtime.checkpoint(tango::DIRECTORY_OID)?;
    runtime.forget(tango::DIRECTORY_OID, dir_ckpt.min(users_ckpt).min(config_ckpt))?;
    let horizon = runtime.compact()?;
    println!("compacted the shared log below offset {horizon}");

    // New clients bootstrap from checkpoints, not the (trimmed) history.
    let fresh = TangoRuntime::new(cluster.client()?)?;
    assert!(fresh.resolve("users")?.is_some(), "directory survived compaction");
    let fresh_users: TangoMap<String, u64> = TangoMap::open_from_checkpoint(&fresh, "users")?;
    println!("fresh client restored {} users from the checkpoint", fresh_users.len()?);
    Ok(())
}
