//! TangoBK (§6.3): BookKeeper-style single-writer ledgers over the shared
//! log, driving an HDFS-namenode-style edit log with failover — the
//! substitution for the paper's HDFS test (see DESIGN.md).
//!
//! Run with: `cargo run --example ledger_store`

use corfu::cluster::{ClusterConfig, LocalCluster};
use tango::TangoRuntime;
use tango_objects::bk::TangoBK;
use tango_objects::zk::{CreateMode, TangoZK};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = LocalCluster::new(ClusterConfig::default());

    // The primary "namenode": namespace in TangoZK, edit log in TangoBK.
    let ledger_id;
    {
        let primary = TangoRuntime::new(cluster.client()?)?;
        let namespace = TangoZK::open(&primary, "fs-namespace")?;
        let editlog = TangoBK::open(&primary, "fs-editlog")?;
        ledger_id = editlog.create_ledger()?;

        namespace.create("/fs", b"", CreateMode::Persistent)?;
        for i in 0..5 {
            let path = format!("/fs/file-{i}");
            namespace.create(&path, format!("blocks:{i}").as_bytes(), CreateMode::Persistent)?;
            editlog.add_entry(ledger_id, format!("OP_ADD {path}").as_bytes())?;
        }
        println!(
            "primary wrote {} files, edit log at entry {}",
            namespace.get_children("/fs")?.len(),
            editlog.last_add_confirmed(ledger_id)?
        );
        // Primary crashes here (dropped without any shutdown protocol).
    }

    // The backup takes over: fence the old writer, replay state.
    let backup = TangoRuntime::new(cluster.client()?)?;
    let namespace = TangoZK::open(&backup, "fs-namespace")?;
    let editlog = TangoBK::open(&backup, "fs-editlog")?;
    editlog.fence(ledger_id)?;
    println!(
        "backup recovered {} files; last edit: {:?}",
        namespace.get_children("/fs")?.len(),
        String::from_utf8(
            editlog.read_entry(ledger_id, editlog.last_add_confirmed(ledger_id)? as u64)?.to_vec()
        )?
    );

    // The backup continues the edit log as the new single writer.
    namespace.create("/fs/file-after-failover", b"", CreateMode::Persistent)?;
    editlog.add_entry(ledger_id, b"OP_ADD /fs/file-after-failover")?;
    editlog.close(ledger_id)?;
    println!(
        "backup appended and closed the ledger at entry {}",
        editlog.last_add_confirmed(ledger_id)?
    );

    // Replaying the whole edit log from the shared log.
    let last = editlog.last_add_confirmed(ledger_id)? as u64;
    for (i, entry) in editlog.read_entries(ledger_id, 0, last)?.iter().enumerate() {
        println!("edit {i}: {}", std::str::from_utf8(entry)?);
    }
    Ok(())
}
