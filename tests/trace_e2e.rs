//! End-to-end request tracing: follow one client operation through the
//! sequencer grant and the per-replica chain writes, and assert the
//! recorded spans form the expected parent/child tree.

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use tango_metrics::{Sampler, SpanKind, SpanRecord};

fn cluster() -> LocalCluster {
    LocalCluster::new(ClusterConfig { num_sets: 1, replication: 2, ..ClusterConfig::default() })
}

fn children_of<'a>(spans: &'a [SpanRecord], parent: &SpanRecord) -> Vec<&'a SpanRecord> {
    spans.iter().filter(|s| s.parent_span_id == parent.span_id).collect()
}

#[test]
fn one_append_produces_the_full_span_tree() {
    let cluster = cluster();
    let mut client = cluster.client().unwrap();
    client.set_sampling(Sampler::one_in(1));

    client.append(Bytes::from_static(b"traced")).unwrap();

    // LocalCluster shares one registry, so every component's spans land in
    // the same ring.
    let spans = cluster.metrics().spans();
    let roots: Vec<&SpanRecord> =
        spans.iter().filter(|s| s.is_root() && s.kind == SpanKind::ClientAppend).collect();
    assert_eq!(roots.len(), 1, "exactly one sampled append root: {spans:?}");
    let root = roots[0];

    let children = children_of(&spans, root);
    let grants: Vec<_> = children.iter().filter(|s| s.kind == SpanKind::SeqGrant).collect();
    let writes: Vec<_> = children.iter().filter(|s| s.kind == SpanKind::StorageWrite).collect();
    assert_eq!(grants.len(), 1, "one token grant under the append: {children:?}");
    assert_eq!(writes.len(), 2, "one chain write per replica: {children:?}");

    // Everything shares the append's trace id, and ids are distinct.
    let mut ids = vec![root.span_id];
    for child in &children {
        assert_eq!(child.trace_id, root.trace_id);
        assert!(!child.is_root());
        ids.push(child.span_id);
    }
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 1 + children.len(), "span ids must be unique");

    // Children close before their parent, so the root records last and
    // every child fits inside the root's window.
    for child in &children {
        assert!(child.duration_ns <= root.duration_ns, "{child:?} outlasted {root:?}");
    }
}

#[test]
fn reads_trace_through_the_chain_tail() {
    let cluster = cluster();
    let mut client = cluster.client().unwrap();
    let off = client.append(Bytes::from_static(b"value")).unwrap();

    client.set_sampling(Sampler::one_in(1));
    client.read(off).unwrap();

    let spans = cluster.metrics().spans();
    let root = spans
        .iter()
        .find(|s| s.is_root() && s.kind == SpanKind::ClientRead)
        .expect("sampled read produces a root span");
    let children = children_of(&spans, root);
    // A clean read touches only the chain tail.
    assert_eq!(children.len(), 1, "{children:?}");
    assert_eq!(children[0].kind, SpanKind::StorageRead);
    assert_eq!(children[0].trace_id, root.trace_id);
}

#[test]
fn stream_sync_traces_the_sequencer_query() {
    let cluster = cluster();
    let stream = corfu_stream::StreamClient::new(cluster.client().unwrap());
    stream.open(7);
    stream.multiappend(&[7], Bytes::from_static(b"s")).unwrap();
    // The tracer's own sampler gates sync roots; the first root() call
    // always hits.
    stream.sync(&[7]).unwrap();

    let spans = cluster.metrics().spans();
    let root = spans
        .iter()
        .find(|s| s.is_root() && s.kind == SpanKind::ClientSync)
        .expect("first sync is sampled");
    let children = children_of(&spans, root);
    assert!(
        children.iter().any(|s| s.kind == SpanKind::SeqQuery),
        "sync's sequencer round trip records under it: {children:?}"
    );
}

#[test]
fn slow_requests_land_in_the_slow_log() {
    let cluster = cluster();
    // With a zero threshold every sampled root qualifies as slow.
    cluster.metrics().tracer().set_slow_threshold(std::time::Duration::ZERO);
    let mut client = cluster.client().unwrap();
    client.set_sampling(Sampler::one_in(1));

    client.append(Bytes::from_static(b"slow")).unwrap();

    let slow = cluster.metrics().slow_spans();
    assert!(
        slow.iter().any(|s| s.is_root() && s.kind == SpanKind::ClientAppend),
        "append root must hit the slow log at threshold zero: {slow:?}"
    );
    // The synthetic counter rides in the snapshot (and thus in scrapes).
    assert!(cluster.metrics().snapshot().counter("trace.slow_requests") >= 1);
}

#[test]
fn unsampled_operations_leave_no_spans() {
    let cluster = cluster();
    let mut client = cluster.client().unwrap();
    // A sampler that can never hit after its first tick is consumed here.
    let sampler = Sampler::one_in(1 << 30);
    assert!(sampler.hit());
    client.set_sampling(sampler);

    for i in 0..8u32 {
        client.append(Bytes::from(format!("quiet-{i}"))).unwrap();
    }
    assert!(
        cluster.metrics().spans().is_empty(),
        "unsampled appends must record nothing: {:?}",
        cluster.metrics().spans()
    );
}
