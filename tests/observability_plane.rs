//! The cluster-wide observability plane over real sockets: per-node HTTP
//! scrape endpoints, the merged cluster snapshot, and trace propagation
//! through TCP frames into per-node span rings.

use std::time::Duration;

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, TcpCluster};
use tango_metrics::{Sampler, SpanKind};
use tango_rpc::http_get;

const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

#[test]
fn every_node_serves_scrape_endpoints() {
    let cluster =
        TcpCluster::spawn(ClusterConfig { num_sets: 2, replication: 2, ..Default::default() })
            .unwrap();
    let client = cluster.client().unwrap();
    for i in 0..8u32 {
        client.append(Bytes::from(format!("scrape-{i}"))).unwrap();
    }

    let targets = cluster.scrape_targets();
    // 4 storage nodes + sequencer + 3 metalog (layout) replicas.
    assert_eq!(targets.len(), 8, "{targets:?}");
    assert!(targets.iter().any(|(name, _)| name == "sequencer"));
    assert_eq!(targets.iter().filter(|(name, _)| name.starts_with("layout-")).count(), 3);

    for (name, addr) in &targets {
        let (status, body) = http_get(addr, "/metrics", SCRAPE_TIMEOUT).unwrap();
        assert_eq!(status, 200, "{name}");
        assert!(!body.is_empty(), "{name} text snapshot must not be empty");
        let (status, body) = http_get(addr, "/metrics.json", SCRAPE_TIMEOUT).unwrap();
        assert_eq!(status, 200, "{name}");
        let text = String::from_utf8_lossy(&body);
        assert!(text.starts_with('{'), "{name}: {text}");
        let (status, _) = http_get(addr, "/spans.json", SCRAPE_TIMEOUT).unwrap();
        assert_eq!(status, 200, "{name}");
    }

    // Storage nodes expose populated service-time histograms.
    let storage = targets.iter().find(|(name, _)| name == "storage-0").unwrap();
    let (_, body) = http_get(&storage.1, "/metrics.json", SCRAPE_TIMEOUT).unwrap();
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("flash.write.service_ns"), "{text}");
    assert!(text.contains("flash.queue_wait_ns"), "{text}");
}

#[test]
fn cluster_snapshot_merges_every_node() {
    let cluster =
        TcpCluster::spawn(ClusterConfig { num_sets: 2, replication: 2, ..Default::default() })
            .unwrap();
    let client = cluster.client().unwrap();
    const APPENDS: u64 = 32;
    for i in 0..APPENDS {
        client.append(Bytes::from(format!("merge-{i}"))).unwrap();
    }
    client.read(0).unwrap();

    let snapshot = cluster.cluster_snapshot();
    // 8 scraped nodes + the synthetic "clients" node.
    assert_eq!(snapshot.len(), 9);
    assert!(snapshot.node("clients").is_some());

    // Per-node breakdown: each storage node holds only its own share.
    let per_node: u64 = (0..4)
        .map(|id| snapshot.node(&format!("storage-{id}")).unwrap())
        .map(|s| s.counter("corfu.storage.writes"))
        .sum();
    assert_eq!(per_node, APPENDS * 2, "32 appends x replication 2");

    let merged = snapshot.merged();
    assert_eq!(merged.counter("corfu.storage.writes"), APPENDS * 2);
    assert_eq!(merged.counter("corfu.seq.tokens_granted"), APPENDS);
    // Client-side counters ride in through the "clients" node.
    assert_eq!(merged.counter("corfu.client.tokens"), APPENDS);

    // The latency decomposition is populated: device service time and
    // lock queue wait both have samples (1-in-16 sampled, first op hits
    // on every node).
    let service = merged.histogram("flash.write.service_ns").expect("service histogram");
    assert!(service.count() >= 1);
    assert!(service.p95() > 0, "sampled writes must have a nonzero p95");
    let wait = merged.histogram("flash.queue_wait_ns").expect("queue-wait histogram");
    assert!(wait.count() >= 1);

    // The text rendering of the merged view carries the quantiles.
    let text = merged.to_text();
    assert!(text.contains("flash.write.service_ns"), "{text}");
    assert!(text.contains("p95="), "{text}");
}

#[test]
fn scrape_survives_killed_nodes() {
    let cluster =
        TcpCluster::spawn(ClusterConfig { num_sets: 2, replication: 2, ..Default::default() })
            .unwrap();
    let client = cluster.client().unwrap();
    for i in 0..4u32 {
        client.append(Bytes::from(format!("pre-{i}"))).unwrap();
    }

    cluster.kill_storage_node(3);
    let snapshot = cluster.cluster_snapshot();
    assert!(snapshot.node("storage-3").is_none(), "killed node drops out of the scrape");
    assert!(snapshot.node("storage-0").is_some());
    assert!(snapshot.merged().counter("corfu.storage.writes") > 0);
}

#[test]
fn traces_propagate_across_tcp_into_per_node_rings() {
    let cluster =
        TcpCluster::spawn(ClusterConfig { num_sets: 1, replication: 2, ..Default::default() })
            .unwrap();
    let mut client = cluster.client().unwrap();
    client.set_sampling(Sampler::one_in(1));

    client.append(Bytes::from_static(b"traced-over-tcp")).unwrap();

    // The root span lives client-side.
    let roots = cluster.metrics().spans();
    let root = roots
        .iter()
        .find(|s| s.is_root() && s.kind == SpanKind::ClientAppend)
        .expect("sampled append records a root span");

    // The grant span lives in the sequencer's own registry, parented to
    // the client's root — the context crossed the socket in the frame.
    let seq_spans = cluster.sequencer_registry().spans();
    let grant = seq_spans
        .iter()
        .find(|s| s.kind == SpanKind::SeqGrant)
        .expect("sequencer records the grant");
    assert_eq!(grant.trace_id, root.trace_id);
    assert_eq!(grant.parent_span_id, root.span_id);

    // Each replica's write span lives in that node's registry.
    for id in 0..2 {
        let spans = cluster.storage_registry(id).unwrap().spans();
        let write = spans
            .iter()
            .find(|s| s.kind == SpanKind::StorageWrite)
            .unwrap_or_else(|| panic!("storage-{id} records its chain write: {spans:?}"));
        assert_eq!(write.trace_id, root.trace_id);
        assert_eq!(write.parent_span_id, root.span_id);
    }
}
