//! The full stack over real TCP sockets on localhost: CORFU servers,
//! stream layer, Tango runtime, objects, transactions.

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, TcpCluster};
use corfu_stream::StreamClient;
use tango::{TangoRuntime, TxStatus};
use tango_objects::{TangoMap, TangoRegister};

#[test]
fn tango_over_tcp_sockets() {
    let config = ClusterConfig { num_sets: 2, replication: 2, ..ClusterConfig::default() };
    let cluster = TcpCluster::spawn(config).unwrap();

    let rt_a = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let rt_b = TangoRuntime::new(cluster.client().unwrap()).unwrap();

    let reg_a: TangoRegister<u64> = TangoRegister::open(&rt_a, "tcp-reg").unwrap();
    let reg_b: TangoRegister<u64> = TangoRegister::open(&rt_b, "tcp-reg").unwrap();
    reg_a.write(&42).unwrap();
    assert_eq!(reg_b.read().unwrap(), Some(42));

    let map_a: TangoMap<String, u64> = TangoMap::open(&rt_a, "tcp-map").unwrap();
    let map_b: TangoMap<String, u64> = TangoMap::open(&rt_b, "tcp-map").unwrap();
    for i in 0..20u64 {
        map_a.put(&format!("key-{i}"), &i).unwrap();
    }
    assert_eq!(map_b.len().unwrap(), 20);

    // A cross-object transaction across the wire.
    map_a.len().unwrap();
    rt_a.begin_tx().unwrap();
    let v = map_a.get(&"key-3".to_owned()).unwrap().unwrap();
    map_a.put(&"key-3".to_owned(), &(v * 100)).unwrap();
    reg_a.write(&v).unwrap();
    assert_eq!(rt_a.end_tx().unwrap(), TxStatus::Committed);
    assert_eq!(map_b.get(&"key-3".to_owned()).unwrap(), Some(300));
    assert_eq!(reg_b.read().unwrap(), Some(3));
}

#[test]
fn concurrent_clients_over_tcp() {
    let config = ClusterConfig { num_sets: 1, replication: 1, ..ClusterConfig::default() };
    let cluster = TcpCluster::spawn(config).unwrap();
    let bootstrap = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let _ = TangoMap::<u64, u64>::open(&bootstrap, "shared").unwrap();

    let mut handles = Vec::new();
    for t in 0..3u64 {
        let client = cluster.client().unwrap();
        handles.push(std::thread::spawn(move || {
            let rt = TangoRuntime::new(client).unwrap();
            let map: TangoMap<u64, u64> = TangoMap::open(&rt, "shared").unwrap();
            for i in 0..20u64 {
                map.put(&(t * 100 + i), &i).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let verify = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let map: TangoMap<u64, u64> = TangoMap::open(&verify, "shared").unwrap();
    assert_eq!(map.len().unwrap(), 60);
}

#[test]
fn junk_broken_backpointers_recover_over_tcp() {
    // §5's fallback path, over real sockets: junk entries sever the
    // backpointer chain, forcing the reader into the batched linear
    // backward scan. The recovered member set must be exact.
    let config = ClusterConfig { num_sets: 2, replication: 2, ..ClusterConfig::default() };
    let cluster = TcpCluster::spawn(config).unwrap();
    let raw = cluster.client().unwrap();
    let writer = StreamClient::new(cluster.client().unwrap());
    let mut real = Vec::new();
    for i in 0..20u64 {
        if i % 5 == 4 {
            // Crash simulation: token issued for stream 3, never written.
            let tok = raw.token(&[3]).unwrap();
            raw.fill(tok.offset).unwrap();
        } else {
            let payload = Bytes::from(format!("p{i}").into_bytes());
            let off = writer.multiappend(&[3], payload.clone()).unwrap();
            real.push((off, payload));
        }
    }
    let reader = StreamClient::new(cluster.client().unwrap());
    reader.open(3);
    reader.sync(&[3]).unwrap();
    let mut got = Vec::new();
    while let Some((off, entry)) = reader.readnext(3).unwrap() {
        got.push((off, entry.payload.clone()));
    }
    assert_eq!(got, real);
    // The scan travelled as ReadBatch requests; the per-node batch-size
    // histogram is scraped over the same HTTP /metrics plane operators use.
    let snap = cluster.cluster_snapshot();
    let batches = snap.merged();
    let hist = batches.histogram("corfu.storage.read_batch").expect("batch histogram scraped");
    assert!(hist.count() > 0, "no batched reads reached storage");
}
