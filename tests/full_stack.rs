//! Cross-crate scenarios: the whole lifecycle on one shared log —
//! multiple services, sequencer failover under live traffic, durable
//! flash-backed storage, and log compaction.

use std::sync::Arc;

use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu::reconfig;
use tango::{TangoRuntime, TxStatus};
use tango_objects::zk::{CreateMode, TangoZK};
use tango_objects::{TangoCounter, TangoMap, TangoQueue};

#[test]
fn two_services_share_one_log() {
    // A scheduler service and a metrics service — different objects,
    // different clients, one shared log; plus a producer that feeds the
    // metrics queue without hosting it (remote writes).
    let cluster = LocalCluster::new(ClusterConfig::default());

    let sched_rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let jobs: TangoMap<u64, String> = TangoMap::open(&sched_rt, "jobs").unwrap();
    let job_count = TangoCounter::open(&sched_rt, "job-count").unwrap();

    let metrics_rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let events: TangoQueue<String> =
        TangoQueue::open_with(&metrics_rt, "events", tango::ObjectOptions { needs_decision: true })
            .unwrap();
    let events_oid = events.oid();

    // The scheduler transacts on its own objects AND pushes an event to
    // the queue it does not host (remote-write transaction, §4.1).
    for i in 0..10u64 {
        jobs.len().unwrap();
        sched_rt.begin_tx().unwrap();
        jobs.put(&i, &format!("job-{i}")).unwrap();
        job_count.add(1).unwrap();
        sched_rt
            .update_remote(
                events_oid,
                None,
                TangoQueue::encode_enqueue(&format!("scheduled job {i}")),
            )
            .unwrap();
        assert_eq!(sched_rt.end_tx().unwrap(), TxStatus::Committed);
    }

    // The metrics service drains its queue; atomicity guaranteed events
    // exist iff the jobs were scheduled.
    let mut drained = 0;
    while let Some(event) = events.dequeue().unwrap() {
        assert!(event.starts_with("scheduled job "));
        drained += 1;
    }
    assert_eq!(drained, 10);
    assert_eq!(job_count.get().unwrap(), 10);
}

#[test]
fn observability_covers_the_whole_stack() {
    // A mixed workload — plain updates, synced reads, committed and
    // aborted transactions, a checkpoint — must light up instruments in
    // every layer of the stack, all visible from one registry snapshot.
    let cluster = LocalCluster::new(ClusterConfig::default());
    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let map: TangoMap<u64, String> = TangoMap::open(&rt, "observed").unwrap();

    for i in 0..20u64 {
        map.put(&i, &format!("v{i}")).unwrap();
    }
    assert_eq!(map.len().unwrap(), 20);
    rt.begin_tx().unwrap();
    map.put(&100, &"tx".to_owned()).unwrap();
    assert_eq!(rt.end_tx().unwrap(), TxStatus::Committed);
    rt.begin_tx().unwrap();
    map.get(&100).unwrap();
    rt.abort_tx().unwrap();
    rt.checkpoint(map.oid()).unwrap();
    rt.sync().unwrap();

    let snap = rt.metrics().snapshot();
    println!("{}", snap.to_text());
    assert!(
        snap.non_zero_count() >= 5,
        "expected >=5 distinct non-zero metrics, got:\n{}",
        snap.to_text()
    );
    // One instrument per layer: sequencer, storage, client, stream, runtime.
    assert!(snap.counter("corfu.seq.tokens_granted") > 0);
    assert!(snap.counter("corfu.storage.writes") > 0);
    assert!(snap.histogram("corfu.client.append_latency_ns").is_some_and(|h| h.count() > 0));
    assert!(snap.histogram("stream.sync_latency_ns").is_some_and(|h| h.count() > 0));
    assert!(snap.counter("tango.tx_commit") > 0);
    assert!(snap.counter("tango.tx_abort") > 0);
    assert!(snap.counter("tango.checkpoints") > 0);
    assert!(snap.histogram("tango.apply_latency_ns").is_some_and(|h| h.count() > 0));

    // The same snapshot renders as JSON for scrapers.
    let json = snap.to_json();
    assert!(json.contains("\"tango.tx_commit\""));
}

#[test]
fn sequencer_failover_under_live_tango_traffic() {
    let cluster = Arc::new(LocalCluster::new(ClusterConfig::default()));
    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let map: TangoMap<u64, u64> = TangoMap::open(&rt, "survivor").unwrap();
    for i in 0..25u64 {
        map.put(&i, &i).unwrap();
    }
    assert_eq!(map.len().unwrap(), 25);

    // Kill the sequencer and reconfigure.
    cluster.kill_sequencer();
    let admin = cluster.client().unwrap();
    let (info, _server) = cluster.spawn_replacement_sequencer();
    reconfig::replace_sequencer(&admin, info, cluster.config().k_backpointers).unwrap();

    // Existing runtime keeps working (its CORFU client refreshes layout).
    map.put(&100, &100).unwrap();
    assert_eq!(map.get(&100).unwrap(), Some(100));
    assert_eq!(map.len().unwrap(), 26);

    // Fresh clients replay everything written across both epochs.
    let rt2 = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let map2: TangoMap<u64, u64> = TangoMap::open(&rt2, "survivor").unwrap();
    assert_eq!(map2.len().unwrap(), 26);
}

#[test]
fn compaction_with_active_namespaces() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let zk = TangoZK::open(&rt, "fs").unwrap();
    zk.create("/apps", b"", CreateMode::Persistent).unwrap();
    for i in 0..10 {
        zk.create(&format!("/apps/app-{i}"), b"cfg", CreateMode::Persistent).unwrap();
    }
    // Checkpoint everything, forget the history, compact.
    let zk_ckpt = rt.checkpoint(zk.oid()).unwrap();
    rt.forget(zk.oid(), zk_ckpt).unwrap();
    let dir_ckpt = rt.checkpoint(tango::DIRECTORY_OID).unwrap();
    rt.forget(tango::DIRECTORY_OID, dir_ckpt.min(zk_ckpt)).unwrap();
    let horizon = rt.compact().unwrap();
    assert!(horizon > 0);

    // A fresh client reconstructs the namespace from the checkpoint.
    let rt2 = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let oid = rt2.resolve("fs").unwrap().expect("directory entry survives");
    let view = rt2
        .register_object_from_checkpoint(
            oid,
            tango_objects::zk::ZkState::default(),
            Default::default(),
        )
        .unwrap();
    rt2.sync().unwrap();
    view.query(None, |_s| ()).unwrap();
    // Post-compaction writes still work.
    zk.create("/apps/app-new", b"", CreateMode::Persistent).unwrap();
    assert_eq!(zk.get_children("/apps").unwrap().len(), 11);
}

#[test]
fn durable_flash_survives_storage_restart() {
    // Run a storage node on the segmented file store, restart it, and
    // verify the log contents survive.
    use corfu::proto::{StorageRequest, StorageResponse, WriteKind};
    use corfu::StorageServer;
    use tango_flash::{FileStore, FlashUnit};

    let dir = std::env::temp_dir().join(format!("tango-e2e-flash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = FileStore::open(&dir, 4096, 1024).unwrap();
        let unit = FlashUnit::open(Box::new(store), 4096).unwrap();
        let server = StorageServer::new(unit);
        for addr in 0..50u64 {
            let resp = server.process(StorageRequest::Write {
                epoch: 0,
                addr,
                kind: WriteKind::Data,
                payload: bytes::Bytes::from(format!("entry-{addr}").into_bytes()),
            });
            assert_eq!(resp, StorageResponse::Ok);
        }
        server.process(StorageRequest::Seal { epoch: 3 });
    }
    // "Restart": reopen from disk.
    let store = FileStore::open(&dir, 4096, 1024).unwrap();
    let unit = FlashUnit::open(Box::new(store), 4096).unwrap();
    assert_eq!(unit.epoch(), 3);
    let server = StorageServer::new(unit);
    match server.process(StorageRequest::Read { epoch: 3, addr: 17 }) {
        StorageResponse::Data(b) => assert_eq!(b, bytes::Bytes::from(&b"entry-17"[..])),
        other => panic!("unexpected {other:?}"),
    }
    // The epoch gate persisted too.
    assert_eq!(
        server.process(StorageRequest::Read { epoch: 0, addr: 17 }),
        StorageResponse::ErrSealed { epoch: 3 }
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
