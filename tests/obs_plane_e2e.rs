//! The health/lag plane and flight recorder end to end over real
//! sockets: `/healthz` and `/events.json` on every node, cluster health
//! riding through a fault window, the sharded cluster snapshot, the
//! cross-log trace tree, and the `tangoctl` inspector against live
//! endpoints.

use std::time::Duration;

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, TcpCluster, LAYOUT_BASE_ID};
use corfu::{log_of_offset, Projection, StreamId};
use tango_metrics::{log_scoped, HealthStatus, Sampler, SpanKind};
use tango_repro::inspector;
use tango_rpc::http_get;

const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

fn stream_in_log(proj: &Projection, log: u32, from: StreamId) -> StreamId {
    (from..).find(|&s| proj.log_of_stream(s) == log).expect("shard map is total")
}

#[test]
fn every_node_serves_healthz_and_events() {
    let cluster =
        TcpCluster::spawn(ClusterConfig { num_sets: 1, replication: 2, ..Default::default() })
            .unwrap();
    let client = cluster.client().unwrap();
    for i in 0..4u32 {
        client.append(Bytes::from(format!("hz-{i}"))).unwrap();
    }

    for (name, addr) in &cluster.scrape_targets() {
        let (status, body) = http_get(addr, "/healthz", SCRAPE_TIMEOUT).unwrap();
        assert_eq!(status, 200, "{name} must be healthy");
        let text = String::from_utf8_lossy(&body);
        assert!(text.starts_with("{\"status\":\"ok\""), "{name}: {text}");
        assert!(text.contains("\"reasons\":[]"), "{name}: {text}");

        let (status, body) = http_get(addr, "/events.json", SCRAPE_TIMEOUT).unwrap();
        assert_eq!(status, 200, "{name}");
        let text = String::from_utf8_lossy(&body);
        assert!(text.starts_with("{\"events\":["), "{name}: {text}");
    }
}

#[test]
fn sequencer_journal_is_scrapeable_after_a_seal() {
    let cluster =
        TcpCluster::spawn(ClusterConfig { num_sets: 1, replication: 2, ..Default::default() })
            .unwrap();
    let client = cluster.client().unwrap();
    for i in 0..3u32 {
        client.append(Bytes::from(format!("seal-{i}"))).unwrap();
    }
    corfu::reconfig::seal_log(&client, 0).unwrap();

    // The sealed sequencer journalled the event in its own registry; it
    // rides out through /events.json and /snapshot.bin alike.
    let targets = cluster.scrape_targets();
    let (_, addr) = targets.iter().find(|(name, _)| name == "sequencer").unwrap();
    let (status, body) = http_get(addr, "/events.json", SCRAPE_TIMEOUT).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("\"kind\":\"sealed\""), "{text}");

    let snapshot = cluster.cluster_snapshot();
    let timeline = snapshot.timeline_text();
    assert!(timeline.contains("node=sequencer") && timeline.contains("kind=sealed"), "{timeline}");
}

#[test]
fn cluster_health_degrades_in_the_fault_window_and_recovers() {
    let cluster =
        TcpCluster::spawn(ClusterConfig { num_sets: 1, replication: 2, ..Default::default() })
            .unwrap();
    let client = cluster.client().unwrap();
    client.append(Bytes::from_static(b"healthy")).unwrap();

    assert_eq!(cluster.cluster_health().status, HealthStatus::Ok);

    // Fault window: one metalog replica dies. The cluster degrades (the
    // target is unreachable) but quorum holds.
    cluster.kill_layout_replica(LAYOUT_BASE_ID + 2);
    let health = cluster.cluster_health();
    assert_eq!(health.status, HealthStatus::Degraded);
    assert!(health.reasons.iter().any(|r| r.code == "unreachable"), "{:?}", health.reasons);

    // Repair: catch a replacement up from the surviving quorum and
    // install it. The dead replica leaves the target list with the
    // membership, so health returns to ok.
    cluster.replace_layout_replica(LAYOUT_BASE_ID + 2).unwrap();
    let health = cluster.cluster_health();
    assert_eq!(health.status, HealthStatus::Ok, "{:?}", health.reasons);

    // Losing a majority of the metalog is unhealthy, not merely degraded.
    cluster.kill_layout_replica(LAYOUT_BASE_ID);
    cluster.kill_layout_replica(LAYOUT_BASE_ID + 1);
    let health = cluster.cluster_health();
    assert_eq!(health.status, HealthStatus::Unhealthy);
    assert!(health.reasons.iter().any(|r| r.code == "meta_quorum"), "{:?}", health.reasons);
}

#[test]
fn sharded_cluster_snapshot_keeps_per_log_instruments_apart() {
    let cluster = TcpCluster::spawn(ClusterConfig::sharded(2)).unwrap();
    let client = cluster.client().unwrap();
    let proj = client.projection();
    let s0 = stream_in_log(&proj, 0, 1);
    let s1 = stream_in_log(&proj, 1, 1);
    for i in 0..5u32 {
        client.append_streams(&[s0], Bytes::from(format!("a-{i}"))).unwrap();
    }
    for i in 0..3u32 {
        client.append_streams(&[s1], Bytes::from(format!("b-{i}"))).unwrap();
    }

    let snapshot = cluster.cluster_snapshot();
    assert!(snapshot.node("sequencer").is_some());
    assert!(snapshot.node("sequencer-1").is_some());

    // Per-log sequencer tails stay under distinct (log-scoped) names in
    // the merged view — no collision between shards.
    let merged = snapshot.merged();
    assert_eq!(merged.gauge(&log_scoped("corfu.seq.tail", 0)), 5);
    assert_eq!(merged.gauge(&log_scoped("corfu.seq.tail", 1)), 3);

    // The client's per-log append counters: log 0 keeps the historic
    // bare name (byte-compatible single-log output), other logs get the
    // `.logN` suffix.
    let clients = snapshot.node("clients").unwrap();
    assert_eq!(clients.counter("corfu.client.appends"), 5);
    assert_eq!(clients.counter(&log_scoped("corfu.client.appends", 1)), 3);
}

#[test]
fn cross_log_multiappend_shares_one_trace_over_tcp() {
    let cluster = TcpCluster::spawn(ClusterConfig::sharded(2)).unwrap();
    let mut client = cluster.client().unwrap();
    client.set_sampling(Sampler::one_in(1));
    let proj = client.projection();
    let s0 = stream_in_log(&proj, 0, 1);
    let s1 = stream_in_log(&proj, 1, 1);

    let (home, _) = client.append_streams(&[s0, s1], Bytes::from_static(b"linked")).unwrap();
    assert_eq!(log_of_offset(home), 0, "the home anchor lives in the lowest log");

    // Client side: one root append span, with a per-log child span for
    // each written part, all in one trace.
    let spans = cluster.metrics().spans();
    let root = spans
        .iter()
        .find(|s| s.is_root() && s.kind == SpanKind::ClientAppend)
        .expect("sampled multiappend records a root span");
    let parts: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::ClientAppend && s.parent_span_id == root.span_id)
        .collect();
    assert_eq!(parts.len(), 2, "one child span per participating log: {spans:?}");
    for part in &parts {
        assert_eq!(part.trace_id, root.trace_id);
    }

    // Server side: *both* logs' sequencers granted under the same trace —
    // the context crossed the socket to every shard.
    for log in 0..2u32 {
        let spans = cluster.sequencer_registry_of(log).spans();
        let grant = spans
            .iter()
            .find(|s| s.kind == SpanKind::SeqGrant)
            .unwrap_or_else(|| panic!("log {log}'s sequencer records its grant: {spans:?}"));
        assert_eq!(grant.trace_id, root.trace_id, "log {log} grant joins the trace");
    }
}

#[test]
fn tangoctl_inspector_reads_a_live_cluster() {
    let cluster =
        TcpCluster::spawn(ClusterConfig { num_sets: 1, replication: 2, ..Default::default() })
            .unwrap();
    let client = cluster.client().unwrap();
    for i in 0..6u32 {
        client.append(Bytes::from(format!("ctl-{i}"))).unwrap();
    }
    corfu::reconfig::seal_log(&client, 0).unwrap();

    let args: Vec<String> =
        cluster.scrape_targets().iter().map(|(name, addr)| format!("{name}={addr}")).collect();
    let targets = inspector::parse_targets(&args);
    let (snapshot, unreachable) = inspector::scrape(&targets, SCRAPE_TIMEOUT);
    assert!(unreachable.is_empty(), "{unreachable:?}");

    let status = inspector::render_status(&snapshot, &unreachable);
    assert!(status.contains("sequencer"), "{status}");
    assert!(status.contains("LOG  EPOCH  SEQ-TAIL"), "{status}");

    let (health_text, verdict) =
        inspector::render_health(&snapshot, &unreachable, &Default::default());
    assert_eq!(verdict, HealthStatus::Ok, "{health_text}");

    let timeline = inspector::render_timeline(&snapshot);
    assert!(
        timeline.contains("kind=sealed"),
        "the seal must appear in the inspector timeline: {timeline}"
    );

    // A second scrape renders the identical timeline — the causal text
    // contains no clocks, so re-scraping quiescent nodes is stable.
    let (again, _) = inspector::scrape(&targets, SCRAPE_TIMEOUT);
    assert_eq!(inspector::render_timeline(&again), timeline);
}
