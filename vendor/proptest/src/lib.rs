//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `proptest` to this shim. It keeps the macro surface the tests use —
//! `proptest!`, `prop_assert*`, `prop_assume!`, `prop_oneof!`, `any`,
//! `Just`, `Strategy::prop_map`, `proptest::collection::{vec, btree_set}`
//! and `ProptestConfig::with_cases` — over a deterministic splitmix64
//! generator. Failing inputs are printed, but there is no shrinking.

use std::fmt::Debug;
use std::ops::Range;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic generator (splitmix64) used to produce test inputs.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name so every test gets a distinct, stable
    /// input sequence. `PROPTEST_SEED` perturbs all of them at once.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = extra.parse::<u64>() {
                seed ^= v;
            }
        }
        Self { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values (retries until `f` accepts one).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: std::rc::Rc::new(self) }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples");
    }
}

/// A type-erased strategy (cheap to clone).
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self { inner: std::rc::Rc::clone(&self.inner) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed alternatives (`prop_oneof!` backend).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a non-zero value.
    pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = variants.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted variant");
        Self { variants, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.variants {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered above")
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Bias toward ASCII but include the odd multibyte scalar.
        match rng.below(4) {
            0 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
            1 => char::from_u32(rng.below(0x80) as u32).unwrap_or('\u{1}'),
            2 => char::from_u32(0x80 + rng.below(0x700) as u32).unwrap_or('é'),
            _ => {
                let v = rng.below(0x10FFF) as u32;
                char::from_u32(v).unwrap_or('\u{1F300}')
            }
        }
    }
}

/// The strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as u64;
                let hi = self.end as u64;
                assert!(hi > lo, "empty range strategy");
                (lo + rng.below(hi - lo)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as u64;
                let hi = *self.end() as u64;
                (lo + rng.below(hi - lo + 1)) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i64;
                let hi = self.end as i64;
                assert!(hi > lo, "empty range strategy");
                (lo + rng.below((hi - lo) as u64) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

/// `".*"`-style regex strategies: the shim interprets any `&str` strategy
/// as "arbitrary string" (the only pattern the workspace uses).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let len = rng.below(24) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
}

// ---------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------

/// `proptest::collection`: sized collections of generated elements.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `BTreeSet` with `size` distinct elements drawn from `element`.
    /// Gives up on reaching the minimum size after bounded retries (small
    /// element domains may not admit it).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let want = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < want.max(self.size.start.min(1)) && attempts < want * 50 + 100 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------
// Config and runner plumbing
// ---------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Outcome of one generated case (used by the `prop_assert*` macros).
pub type TestCaseResult = Result<(), TestCaseError>;

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; the case is skipped, not failed.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Formats a failing value for the panic message.
pub fn describe_input(pairs: &[(&'static str, String)]) -> String {
    pairs
        .iter()
        .map(|(name, value)| format!("  {name} = {value}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Debug-formats one generated input (used by the macro expansion).
pub fn format_value<T: Debug>(v: &T) -> String {
    format!("{v:?}")
}

/// Everything a test file needs: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Just, ProptestConfig, Strategy,
    };
    /// Alias module so `prop::collection::vec(...)` also resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// The proptest entry macro: wraps each `fn name(arg in strategy, ..)`
/// into a `#[test]` that samples inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut inputs: Vec<(&'static str, String)> = Vec::new();
                    $(
                        let sampled = $crate::Strategy::sample(&$strat, &mut rng);
                        inputs.push((stringify!($arg), $crate::format_value(&sampled)));
                        let $arg = sampled;
                    )*
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) | Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {case} failed: {msg}\ninputs:\n{}",
                                $crate::describe_input(&inputs)
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u8),
        B,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => any::<u8>().prop_map(Op::A),
            1 => Just(Op::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(v in 3u64..17, w in 0usize..4) {
            prop_assert!((3..17).contains(&v));
            prop_assert!(w < 4);
        }

        #[test]
        fn vec_sizes(v in collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_tuples((x, y) in (0u32..5, op())) {
            prop_assert!(x < 5);
            let _ = y;
        }

        #[test]
        fn strings_generate(s in ".*") {
            let _: String = s;
        }

        #[test]
        fn assume_skips(v in any::<u8>()) {
            prop_assume!(v != 0);
            prop_assert!(v > 0);
        }
    }
}
