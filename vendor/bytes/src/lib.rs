//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `bytes` to this shim. It implements only what the workspace
//! uses: an immutable, cheaply-clonable byte container backed by an
//! `Arc<[u8]>` (plus a no-copy variant for `'static` slices).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty `Bytes`.
    pub const fn new() -> Self {
        Bytes { repr: Repr::Static(&[]) }
    }

    /// Wraps a `'static` slice without copying.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes { repr: Repr::Static(data) }
    }

    /// Copies `data` into a new shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { repr: Repr::Shared(Arc::from(data)) }
    }

    /// The length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a new `Bytes` holding a copy of the given subrange.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes::copy_from_slice(&self.as_slice()[range])
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { repr: Repr::Shared(Arc::from(v.into_boxed_slice())) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes { repr: Repr::Shared(Arc::from(b)) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        assert_eq!(&a[..], &[1, 2, 3]);
        let s = Bytes::from_static(b"hello");
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
