//! Offline stand-in for `criterion`.
//!
//! A minimal but honest wall-clock benchmark harness exposing the subset
//! of the criterion 0.5 API this workspace uses: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `iter`, `iter_batched`,
//! throughput annotation, and `black_box`. Each benchmark is calibrated
//! to a target measurement time and reports mean ns/iteration (and
//! throughput when annotated). There are no statistical confidence
//! intervals — numbers are means over a fixed measuring window.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup results are grouped (API compatibility; the shim
/// re-runs setup per batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state: large batches.
    SmallInput,
    /// Large per-iteration state: smaller batches.
    LargeInput,
    /// Setup re-runs before every single iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark context.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Parses CLI args (ignored by the shim; present for API parity).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the measuring window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_override: None,
        }
    }

    /// Runs a standalone benchmark (equivalent to a one-entry group).
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mt = self.measurement_time;
        let wt = self.warm_up_time;
        run_one(name, None, mt, wt, f);
        self
    }
}

/// A named collection of benchmarks sharing throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_override: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Criterion API parity; the shim scales its measuring window down
    /// when a smaller sample count is requested.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_override = Some(n);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let mut mt = self.criterion.measurement_time;
        let wt = self.criterion.warm_up_time;
        if let Some(n) = self.sample_override {
            // Criterion's default is 100 samples; scale our window likewise.
            mt = Duration::from_nanos((mt.as_nanos() as u64 / 100).saturating_mul(n as u64).max(10_000_000));
        }
        run_one(&full, self.throughput, mt, wt, f);
        self
    }

    /// Ends the group (no-op; groups flush eagerly).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the measured iterations.
pub struct Bencher {
    mode: BenchMode,
    /// Accumulated (iterations, elapsed) from the measuring phase.
    samples: Vec<(u64, Duration)>,
}

enum BenchMode {
    /// Estimate how many iterations fill the window.
    Calibrate { target: Duration, iters_hint: u64 },
    /// Measure `iters` iterations.
    Measure { iters: u64 },
}

impl Bencher {
    /// Times `routine` over the harness-chosen number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            BenchMode::Calibrate { target, ref mut iters_hint } => {
                // Double the iteration count until the wall time is visible.
                let mut n = 1u64;
                loop {
                    let start = Instant::now();
                    for _ in 0..n {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= target / 20 || n >= 1 << 30 {
                        let per_iter = elapsed.as_nanos().max(1) as u64 / n.max(1);
                        *iters_hint = (target.as_nanos() as u64 / per_iter.max(1)).max(1);
                        break;
                    }
                    n *= 2;
                }
            }
            BenchMode::Measure { iters } => {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.samples.push((iters, start.elapsed()));
            }
        }
    }

    /// Times `routine` with fresh state from `setup` each batch.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        match self.mode {
            BenchMode::Calibrate { target, ref mut iters_hint } => {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                let elapsed = start.elapsed().as_nanos().max(1) as u64;
                *iters_hint = (target.as_nanos() as u64 / elapsed).clamp(1, 1 << 20);
            }
            BenchMode::Measure { iters } => {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    total += start.elapsed();
                }
                self.samples.push((iters, total));
            }
        }
    }
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration pass (doubles as warm-up).
    let mut b = Bencher {
        mode: BenchMode::Calibrate { target: warm_up_time.max(Duration::from_millis(10)), iters_hint: 1 },
        samples: Vec::new(),
    };
    f(&mut b);
    let iters_hint = match b.mode {
        BenchMode::Calibrate { iters_hint, .. } => iters_hint,
        _ => 1,
    };

    // Measuring passes: split the window into a handful of samples.
    const SAMPLES: u64 = 5;
    let per_sample = (iters_hint * measurement_time.as_nanos() as u64
        / warm_up_time.max(Duration::from_millis(10)).as_nanos() as u64
        / SAMPLES)
        .max(1);
    let mut samples = Vec::new();
    for _ in 0..SAMPLES {
        let mut b = Bencher { mode: BenchMode::Measure { iters: per_sample }, samples: Vec::new() };
        f(&mut b);
        samples.extend(b.samples);
    }

    let total_iters: u64 = samples.iter().map(|(n, _)| n).sum();
    let total_time: Duration = samples.iter().map(|(_, d)| *d).sum();
    let mean_ns = total_time.as_nanos() as f64 / total_iters.max(1) as f64;
    let mut line = format!("{name:<44} {:>12.1} ns/iter", mean_ns);
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gbps = bytes as f64 / mean_ns;
            line.push_str(&format!("  ({gbps:.3} GB/s)"));
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 * 1e3 / mean_ns;
            line.push_str(&format!("  ({meps:.3} Melem/s)"));
        }
        None => {}
    }
    println!("{line}");
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Bytes(8));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
