//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel` with cloneable senders *and* receivers
//! (the property std's mpsc lacks), implemented over a mutex-guarded
//! queue and a condition variable.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending into a channel with no receivers left.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders disconnected and the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Reasons a `try_recv` can fail.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// The queue is empty and every sender is gone.
        Disconnected,
    }

    /// Reasons a `recv_timeout` can fail.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with nothing received.
        Timeout,
        /// The queue is empty and every sender is gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only when no receiver remains.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Waits up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Pops a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Iterator over the values currently queued, without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Blocking iterator that ends when all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// True when no value is queued.
        pub fn is_empty(&self) -> bool {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// See [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_try_iter() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
