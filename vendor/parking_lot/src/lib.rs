//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std primitives with parking_lot's panic-free API: `lock()`,
//! `read()` and `write()` return guards directly, recovering from
//! poisoning instead of returning `Result`s.

use std::fmt;
use std::sync::{self, TryLockError};
use std::time::Duration;

pub use sync::MutexGuard as StdMutexGuard;

/// A mutual-exclusion lock with parking_lot's infallible interface.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poisoning is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with parking_lot's infallible interface.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// A condition variable mirroring parking_lot's `Condvar`.
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of a timed wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self { inner: sync::Condvar::new() }
    }

    /// Blocks until notified. The guard is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, r) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs `f` on the owned guard behind `&mut`, putting the result back.
fn take_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY-free version: std's wait() consumes the guard, but parking_lot's
    // takes &mut. Bridge by replacing through ManuallyDrop-style ptr moves is
    // unsafe; instead we rely on the fact that all our callers own the guard.
    // We use a small unsafe read/write pair, which is sound because `f`
    // either returns a valid guard or panics (poisoning handled above).
    unsafe {
        let guard = std::ptr::read(slot);
        let new = f(guard);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wakes() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        std::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_one();
        });
        let mut done = pair.0.lock();
        while !*done {
            pair.1.wait_for(&mut done, Duration::from_millis(50));
        }
        assert!(*done);
    }
}
